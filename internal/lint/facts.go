package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Facts holds cross-package analysis facts computed once per driver run over
// every loaded module package, before any analyzer runs. The flagship fact is
// "this function performs I/O": seeded from a curated model of the standard
// library (network, file system, process, blocking sleeps, stream codecs) and
// propagated through the module's call graph to a fixpoint, so an analyzer
// looking at `c.exchange(req)` under a mutex knows the callee three packages
// away eventually writes to a socket.
//
// Facts are deliberately monotone (they only turn on), which makes the
// fixpoint order-independent and the result deterministic. Calls that cannot
// be resolved statically (function values, module-defined interface methods)
// contribute no fact — the engine under-approximates rather than guess.
type Facts struct {
	io map[*types.Func]bool
}

// PerformsIO reports whether fn is known to (transitively) perform I/O or
// block: either a standard-library I/O primitive or a module function whose
// body reaches one. A nil Facts answers using the stdlib model alone.
func (fc *Facts) PerformsIO(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if stdlibIO(fn) {
		return true
	}
	return fc != nil && fc.io[fn]
}

// IOFuncs returns the exported module functions carrying the performs-I/O
// fact, as "pkgpath.FuncName" strings in sorted order — the driver's -facts
// view, and a stable surface for tests.
func (fc *Facts) IOFuncs() []string {
	if fc == nil {
		return nil
	}
	var out []string
	for fn := range fc.io {
		if !fn.Exported() || fn.Pkg() == nil {
			continue
		}
		out = append(out, fn.Pkg().Path()+"."+funcDisplayName(fn))
	}
	sort.Strings(out)
	return out
}

func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		// The caller prefixes the package path, so render the receiver
		// unqualified: pkg/path.Recv.Method, not pkg/path.pkg.Recv.Method.
		s := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		return strings.TrimPrefix(strings.TrimPrefix(s, "*"), ".") + "." + fn.Name()
	}
	return fn.Name()
}

// ioPackages are standard-library packages whose every function and method
// is treated as performing (or potentially blocking on) I/O. The set is
// deliberately coarse: holding a mutex across *any* call into these packages
// is at best suspicious, and a false positive costs one reviewed
// //lint:ignore line.
var ioPackages = map[string]bool{
	"net":          true,
	"os":           true,
	"os/exec":      true,
	"os/signal":    true,
	"io":           true,
	"io/fs":        true,
	"io/ioutil":    true,
	"bufio":        true,
	"syscall":      true,
	"database/sql": true,
	"crypto/tls":   true,
	"crypto/rand":  true,
	"log":          true,
	"log/slog":     true,
}

// ioFuncs lists (package, name) pairs treated as I/O in packages that are
// otherwise pure: blocking sleeps, the stream codecs (whose Encode/Decode
// drive an underlying reader/writer), and fmt's writer-directed helpers.
// fmt.Sprintf and friends stay exempt — they allocate but never block.
var ioFuncs = map[[2]string]bool{
	{"time", "Sleep"}:   true,
	{"fmt", "Print"}:    true,
	{"fmt", "Printf"}:   true,
	{"fmt", "Println"}:  true,
	{"fmt", "Fprint"}:   true,
	{"fmt", "Fprintf"}:  true,
	{"fmt", "Fprintln"}: true,
	{"fmt", "Scan"}:     true,
	{"fmt", "Scanf"}:    true,
	{"fmt", "Scanln"}:   true,
	{"fmt", "Fscan"}:    true,
	{"fmt", "Fscanf"}:   true,
	{"fmt", "Fscanln"}:  true,
}

// ioCodecPackages are packages whose Encoder/Decoder methods stream to an
// underlying writer/reader (network or file in every serving-path use).
// Their pure value<->bytes functions (json.Marshal, ...) carry no fact.
var ioCodecPackages = map[string]bool{
	"encoding/gob":  true,
	"encoding/json": true,
	"encoding/xml":  true,
}

// stdlibIO is the seed predicate: does this standard-library (or otherwise
// AST-less) function perform I/O by the curated model above?
func stdlibIO(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if ioPackages[path] || strings.HasPrefix(path, "net/") {
		return true
	}
	if ioFuncs[[2]string{path, fn.Name()}] {
		return true
	}
	if ioCodecPackages[path] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := receiverName(sig.Recv().Type())
			if strings.HasSuffix(recv, "Encoder") || strings.HasSuffix(recv, "Decoder") {
				return true
			}
		}
	}
	return false
}

// ComputeFacts builds the cross-package fact set over pkgs (typically
// Loader.Cached(): every module package reached while loading). It walks each
// function body once to record static call edges, then propagates the I/O
// fact callee-to-caller until nothing changes.
func ComputeFacts(pkgs []*Package) *Facts {
	fc := &Facts{io: make(map[*types.Func]bool)}

	// declBody pairs a module function with its body; callees holds the
	// statically resolved calls out of it.
	type declInfo struct {
		fn      *types.Func
		callees []*types.Func
	}
	var decls []declInfo
	for _, pkg := range pkgs {
		if pkg == nil || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				di := declInfo{fn: fn}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := calleeFunc(pkg.Info, call); callee != nil {
						di.callees = append(di.callees, callee)
					}
					return true
				})
				decls = append(decls, di)
			}
		}
	}

	// Monotone fixpoint: a function gains the fact when any callee has it.
	// Module call graphs are shallow; the loop converges in a few passes.
	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			if fc.io[di.fn] {
				continue
			}
			for _, callee := range di.callees {
				if stdlibIO(callee) || fc.io[callee] {
					fc.io[di.fn] = true
					changed = true
					break
				}
			}
		}
	}
	return fc
}

// calleeFunc statically resolves a call expression to the *types.Func it
// invokes, or nil for function values, type conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
