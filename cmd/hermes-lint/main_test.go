package main

// The driver's exit status is CI interface, consumed by scripts/lint-diff.sh
// and scripts/verify.sh: 0 clean, 1 findings (with -diff: new findings),
// 2 usage or load error. These tests build the real binary once and drive it
// as a subprocess over throwaway single-purpose modules, so the contract is
// pinned end to end — flag parsing, loading, gating, and exit code — not
// just at the library layer.

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var lintBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "hermes-lint-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	lintBin = filepath.Join(dir, "hermes-lint")
	if out, err := exec.Command("go", "build", "-o", lintBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building hermes-lint: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// writeModule lays out a throwaway module the binary is run inside; keys are
// slash-separated paths relative to the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.24.0\n"
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runLint executes the built binary with dir as the working directory and
// returns its exit code plus combined output.
func runLint(t *testing.T, dir string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(lintBin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("hermes-lint %v: %v\n%s", args, err, out)
	}
	return exit.ExitCode(), string(out)
}

const cleanSrc = `package clean

// Add is finding-free under every analyzer.
func Add(a, b int) int { return a + b }
`

// dirtySrc trips globalrand: a library call into the package-global
// math/rand source.
const dirtySrc = `package lib

import "math/rand"

func Pick() int { return rand.Intn(10) }
`

func TestExitCleanIsZero(t *testing.T) {
	root := writeModule(t, map[string]string{"clean.go": cleanSrc})
	code, out := runLint(t, root, "./...")
	if code != 0 {
		t.Errorf("clean module: exit %d, want 0\n%s", code, out)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	root := writeModule(t, map[string]string{"lib.go": dirtySrc})
	code, out := runLint(t, root, "./...")
	if code != 1 {
		t.Errorf("module with findings: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "globalrand") {
		t.Errorf("finding listing missing the check name:\n%s", out)
	}
}

func TestExitLoadErrorIsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{"broken.go": "package broken\n\nfunc (\n"})
	code, out := runLint(t, root, "./...")
	if code != 2 {
		t.Errorf("syntactically broken module: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "broken.go") {
		t.Errorf("stderr should name the broken file:\n%s", out)
	}
}

// TestExitLoadErrorInDependency pins the subtle half of the exit-2 contract:
// the broken package is reached only as an import of the pattern target, where
// type-check error recovery would otherwise swallow it and exit 0.
func TestExitLoadErrorInDependency(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"fixture/b\"\n\nfunc Use() int { return b.V }\n",
		"b/b.go": "package b\n\nvar V int = \n",
	})
	code, out := runLint(t, root, "./a")
	if code != 2 {
		t.Errorf("broken dependency: exit %d, want 2\n%s", code, out)
	}
}

func TestExitUsageErrorIsTwo(t *testing.T) {
	root := writeModule(t, map[string]string{"clean.go": cleanSrc})
	code, out := runLint(t, root, "-baseline", "x.json", "-diff", "y.json", "./...")
	if code != 2 {
		t.Errorf("mutually exclusive flags: exit %d, want 2\n%s", code, out)
	}
}

// TestDiffGate drives the incremental-adoption loop scripts/lint-diff.sh
// depends on: a committed report absorbs its own findings (exit 0), and a
// finding in a file the committed report has never seen — the new-file case —
// still gates (exit 1).
func TestDiffGate(t *testing.T) {
	root := writeModule(t, map[string]string{"lib.go": dirtySrc})

	cmd := exec.Command(lintBin, "-json", "./...")
	cmd.Dir = root
	report, err := cmd.Output() // exit 1: findings exist; the report is still complete
	if len(report) == 0 {
		t.Fatalf("-json produced no report (%v)", err)
	}
	if err := os.WriteFile(filepath.Join(root, "report.json"), report, 0o644); err != nil {
		t.Fatal(err)
	}

	if code, out := runLint(t, root, "-diff", "report.json", "./..."); code != 0 {
		t.Errorf("all findings in the committed report: exit %d, want 0\n%s", code, out)
	}

	// A brand-new file with a finding: nothing in the committed report can
	// absorb it, so the gate must fail.
	if err := os.WriteFile(filepath.Join(root, "fresh.go"),
		[]byte("package lib\n\nimport \"math/rand\"\n\nfunc Fresh() float64 { return rand.Float64() }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runLint(t, root, "-diff", "report.json", "./...")
	if code != 1 {
		t.Errorf("new finding in a new file: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "new finding(s)") {
		t.Errorf("diff-gated run should report new finding(s):\n%s", out)
	}
}
