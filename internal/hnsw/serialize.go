package hnsw

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/vec"
)

// wireIndex is the gob-encoded form of an HNSW graph.
type wireIndex struct {
	Dim            int
	M              int
	EfConstruction int
	EfSearch       int
	Seed           int64
	Entry          int32
	MaxLevel       int
	Data           []float32
	IDs            []int64
	// Neighbors flattens the per-node adjacency: for node i, Levels[i]
	// gives the layer count and Flat[i] the concatenated layers with
	// Counts[i] holding per-layer lengths.
	Counts [][]int32
	Flat   [][]int32
}

// Save serializes the graph in gob format.
func (ix *Index) Save(w io.Writer) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	wi := wireIndex{
		Dim:            ix.cfg.Dim,
		M:              ix.cfg.M,
		EfConstruction: ix.cfg.EfConstruction,
		EfSearch:       ix.cfg.EfSearch,
		Seed:           ix.cfg.Seed,
		Entry:          ix.entry,
		MaxLevel:       ix.maxLevel,
		Data:           ix.data.Data(),
	}
	wi.IDs = make([]int64, len(ix.nodes))
	wi.Counts = make([][]int32, len(ix.nodes))
	wi.Flat = make([][]int32, len(ix.nodes))
	for i := range ix.nodes {
		wi.IDs[i] = ix.nodes[i].id
		counts := make([]int32, len(ix.nodes[i].neighbors))
		var flat []int32
		for l, nbrs := range ix.nodes[i].neighbors {
			counts[l] = int32(len(nbrs))
			flat = append(flat, nbrs...)
		}
		wi.Counts[i] = counts
		wi.Flat[i] = flat
	}
	//lint:ignore lockheldio the lock IS the snapshot: wireIndex aliases the live Data buffer, and copying it to move the encode out of the lock would double peak memory during saves
	return gob.NewEncoder(w).Encode(&wi)
}

// Load deserializes a graph written by Save.
func Load(r io.Reader) (*Index, error) {
	var wi wireIndex
	if err := gob.NewDecoder(r).Decode(&wi); err != nil {
		return nil, fmt.Errorf("hnsw: decode: %w", err)
	}
	ix, err := New(Config{
		Dim: wi.Dim, M: wi.M, EfConstruction: wi.EfConstruction,
		EfSearch: wi.EfSearch, Seed: wi.Seed,
	})
	if err != nil {
		return nil, err
	}
	n := len(wi.IDs)
	if len(wi.Data) != n*wi.Dim {
		return nil, fmt.Errorf("hnsw: corrupt data: %d floats for %d nodes of dim %d", len(wi.Data), n, wi.Dim)
	}
	ix.data = vec.NewMatrix(n, wi.Dim)
	copy(ix.data.Data(), wi.Data)
	ix.nodes = make([]node, n)
	for i := 0; i < n; i++ {
		ix.nodes[i].id = wi.IDs[i]
		counts := wi.Counts[i]
		flat := wi.Flat[i]
		ix.nodes[i].neighbors = make([][]int32, len(counts))
		off := int32(0)
		for l, c := range counts {
			if int(off+c) > len(flat) {
				return nil, fmt.Errorf("hnsw: corrupt adjacency for node %d", i)
			}
			ix.nodes[i].neighbors[l] = flat[off : off+c : off+c]
			off += c
		}
	}
	ix.entry = wi.Entry
	ix.maxLevel = wi.MaxLevel
	return ix, nil
}
