// Package poolescape is the fixture for the poolescape analyzer.
package poolescape

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

var global *buf

type holder struct{ b *buf }

func direct() any {
	return pool.Get() // want "returned from direct"
}

func asserted() *buf {
	return pool.Get().(*buf) // want "returned from asserted"
}

func tracked() *buf {
	b := pool.Get().(*buf)
	b.b = b.b[:0]
	return b // want "returned from tracked"
}

func commaOK() *buf {
	v, ok := pool.Get().(*buf)
	if !ok {
		return nil
	}
	return v // want "returned from commaOK"
}

func viaField(h *holder) {
	h.b = pool.Get().(*buf) // want "stored into struct field h.b"
}

func viaGlobal() {
	global = pool.Get().(*buf) // want "stored into package-level variable global"
}

func bracketed() int {
	b := pool.Get().(*buf)
	n := len(b.b)
	pool.Put(b) // proper Get/Put bracket: fine
	return n
}

func localOnly() {
	local := pool.Get().(*buf)
	other := local // aliasing is out of scope for the lexical check
	_ = other
	pool.Put(local)
}

func accessor() *buf {
	//lint:ignore poolescape fixture: typed accessor paired with the put() below
	return pool.Get().(*buf)
}

func put(b *buf) { pool.Put(b) }
