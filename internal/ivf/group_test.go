package ivf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// TestSearchGroupEquivalence pins the grouped scan to the sequential path for
// every kernel and both encoding modes: same neighbors, same scores, same
// per-query work stats, plus the shared-scan accounting identities.
func TestSearchGroupEquivalence(t *testing.T) {
	data := gaussianData(700, 16, 71)
	queries := gaussianData(12, 16, 72)
	for name, cfg := range searchConfigs(t, 16) {
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, data, cfg)
			qs := make([][]float32, queries.Len())
			for i := range qs {
				qs[i] = queries.Row(i)
			}
			got, stats := ix.SearchGroup(qs, 7, 4)
			if stats.Queries != len(qs) {
				t.Fatalf("stats.Queries = %d, want %d", stats.Queries, len(qs))
			}
			logical := 0
			g := ix.getGroupSearcher() // fresh or pooled; re-run to read QueryStats
			// Deferred so a Fatalf in the loop below cannot skip the Put
			// and leak the searcher — the bracket shape poolretain endorses.
			defer ix.groupPool.Put(g)
			g.Search(qs, 7, 4)
			for qi, q := range qs {
				want, wantStats := ix.SearchWithStats(q, 7, 4)
				if !reflect.DeepEqual(got[qi], want) {
					t.Fatalf("query %d: grouped %v != sequential %v", qi, got[qi], want)
				}
				if qst := g.QueryStats(qi); qst != wantStats {
					t.Fatalf("query %d: grouped stats %+v != sequential %+v", qi, qst, wantStats)
				}
				logical += wantStats.VectorsScanned
			}
			// Shared streams must never exceed the per-query logical work,
			// and the savings counter must account for every duplicate probe.
			if stats.VectorsScanned > logical {
				t.Fatalf("streamed %d vectors > %d logical", stats.VectorsScanned, logical)
			}
			totalProbes := len(qs) * 4
			if stats.CellsScanned+stats.SharedCellScans != totalProbes {
				t.Fatalf("cells %d + shared %d != %d probes", stats.CellsScanned, stats.SharedCellScans, totalProbes)
			}
		})
	}
}

// TestSearchGroupTombstones exercises the grouped dead-position cursor:
// removals scattered across block boundaries must be skipped for every query
// in a group exactly as the sequential cursor skips them.
func TestSearchGroupTombstones(t *testing.T) {
	data := gaussianData(900, 8, 81)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 3, Seed: 9})
	removed := map[int64]bool{}
	for id := int64(0); id < 900; id += 7 {
		if ix.Remove(id) {
			removed[id] = true
		}
	}
	qs := make([][]float32, 6)
	for i := range qs {
		qs[i] = data.Row(i * 13)
	}
	got, stats := ix.SearchGroup(qs, 20, ix.NList())
	// All queries probe all 3 cells, so the shared stream covers each live
	// vector exactly once.
	if stats.VectorsScanned != ix.Len() {
		t.Fatalf("streamed %d, want %d live", stats.VectorsScanned, ix.Len())
	}
	if want := (len(qs) - 1) * ix.NList(); stats.SharedCellScans != want {
		t.Fatalf("SharedCellScans = %d, want %d", stats.SharedCellScans, want)
	}
	for qi, q := range qs {
		want, _ := ix.SearchWithStats(q, 20, ix.NList())
		if !reflect.DeepEqual(got[qi], want) {
			t.Fatalf("query %d: grouped %v != sequential %v", qi, got[qi], want)
		}
		for _, nb := range got[qi] {
			if removed[nb.ID] {
				t.Fatalf("query %d: removed id %d surfaced", qi, nb.ID)
			}
		}
	}
}

// TestSearchGroupProperty is the randomized grouped/sequential equivalence
// property across batch shapes: random corpus, quantizer, residual mode,
// batch size, k, nProbe, and tombstones — grouped results must always match
// per-query execution.
func TestSearchGroupProperty(t *testing.T) {
	f := func(seed int64) bool {
		ix, n, err := randomIndex(seed)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		rng := rand.New(rand.NewSource(seed + 5))
		for i := 0; i < rng.Intn(n/4+1); i++ {
			ix.Remove(int64(rng.Intn(n)))
		}
		batch := rng.Intn(16) + 1
		qs := make([][]float32, batch)
		for i := range qs {
			q := make([]float32, ix.Dim())
			for d := range q {
				q[d] = float32(rng.NormFloat64())
			}
			qs[i] = q
		}
		k := rng.Intn(10) + 1
		nProbe := rng.Intn(ix.NList()) + 1
		got, stats := ix.SearchGroup(qs, k, nProbe)
		for qi, q := range qs {
			want, _ := ix.SearchWithStats(q, k, nProbe)
			if !reflect.DeepEqual(got[qi], want) {
				t.Logf("seed %d query %d: grouped %v != sequential %v", seed, qi, got[qi], want)
				return false
			}
		}
		return stats.CellsScanned+stats.SharedCellScans == batch*nProbe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSearchGroupReuse runs batches of shrinking and growing sizes through
// one pooled GroupSearcher: stale slots from a bigger batch must never leak
// into a smaller one, and an early-returning search must not surface the
// previous batch's results.
func TestSearchGroupReuse(t *testing.T) {
	data := gaussianData(300, 8, 91)
	queries := gaussianData(9, 8, 92)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 6, Seed: 3})
	g := ix.NewGroupSearcher()
	for _, size := range []int{9, 3, 1, 6, 9} {
		qs := make([][]float32, size)
		for i := range qs {
			qs[i] = queries.Row(i)
		}
		g.Search(qs, 5, 3)
		for qi, q := range qs {
			want, _ := ix.SearchWithStats(q, 5, 3)
			got := g.AppendResults(qi, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("size %d query %d: %v != %v", size, qi, got, want)
			}
		}
		if extra := g.AppendResults(size, nil); extra != nil {
			t.Fatalf("size %d: out-of-range slot returned %v", size, extra)
		}
	}
	// k <= 0 returns early; the previous batch's retained slots must stay
	// invisible.
	g.Search([][]float32{queries.Row(0)}, 0, 3)
	if res := g.AppendResults(0, nil); res != nil {
		t.Fatalf("early-return search surfaced stale results %v", res)
	}
}

// TestSearchGroupZeroAlloc is the grouped steady-state allocation contract:
// a warmed GroupSearcher serving a constant batch shape performs zero heap
// allocations per batch, for every kernel and in residual mode. This is the
// //hermes:hotpath guarantee BENCH_PR8 enforces end to end.
func TestSearchGroupZeroAlloc(t *testing.T) {
	data := gaussianData(600, 16, 95)
	queries := gaussianData(8, 16, 96)
	for name, cfg := range searchConfigs(t, 16) {
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, data, cfg)
			g := ix.NewGroupSearcher()
			qs := make([][]float32, queries.Len())
			for i := range qs {
				qs[i] = queries.Row(i)
			}
			dst := make([]vec.Neighbor, 0, 16)
			for warm := 0; warm < 3; warm++ {
				g.Search(qs, 8, 6)
				for i := range qs {
					dst = g.AppendResults(i, dst[:0])
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				g.Search(qs, 8, 6)
				for i := range qs {
					dst = g.AppendResults(i, dst[:0])
				}
			})
			if allocs != 0 {
				t.Fatalf("%s: %v allocations per grouped batch", name, allocs)
			}
		})
	}
}

// TestPredictCells pins the batcher's grouping signal to the probe selection
// the search itself performs.
func TestPredictCells(t *testing.T) {
	data := gaussianData(400, 8, 97)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 10, Seed: 5})
	q := data.Row(7)
	cells := ix.PredictCells(nil, q, 4)
	if len(cells) != 4 {
		t.Fatalf("predicted %d cells, want 4", len(cells))
	}
	s := ix.NewSearcher()
	s.Search(nil, q, 3, 4)
	if !reflect.DeepEqual(cells, s.cells) {
		t.Fatalf("predicted %v != searched %v", cells, s.cells)
	}
	// Clamps mirror the search path; reuse of dst keeps the caller alloc-free.
	cells = ix.PredictCells(cells, q, 99)
	if len(cells) != ix.NList() {
		t.Fatalf("nProbe=99 predicted %d cells, want %d", len(cells), ix.NList())
	}
	if got := ix.PredictCells(cells, make([]float32, 3), 4); len(got) != 0 {
		t.Fatalf("dim mismatch predicted %d cells, want 0", len(got))
	}
	var un Index
	if got := un.PredictCells(nil, q, 4); len(got) != 0 {
		t.Fatalf("untrained predicted %d cells, want 0", len(got))
	}
}

// BenchmarkGroupScan contrasts the grouped scan against per-query execution
// on a cell-skewed batch: 16 queries drawn from a handful of topic centers so
// their probe sets overlap heavily — the batcher's steady-state shape.
func BenchmarkGroupScan(b *testing.B) {
	const dim, batch = 64, 16
	data := gaussianData(20000, dim, 1)
	ix, err := New(Config{Dim: dim, NList: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.Train(data); err != nil {
		b.Fatal(err)
	}
	if err := ix.AddBatch(0, data); err != nil {
		b.Fatal(err)
	}
	// Jittered copies of 3 seed rows: heavy probe-set overlap.
	rng := rand.New(rand.NewSource(2))
	qs := make([][]float32, batch)
	for i := range qs {
		base := data.Row([]int{11, 222, 3333}[i%3])
		q := make([]float32, dim)
		for d := range q {
			q[d] = base[d] + float32(rng.NormFloat64())*0.01
		}
		qs[i] = q
	}
	b.Run("grouped", func(b *testing.B) {
		g := ix.NewGroupSearcher()
		dst := make([]vec.Neighbor, 0, 16)
		g.Search(qs, 10, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Search(qs, 10, 8)
			for qi := range qs {
				dst = g.AppendResults(qi, dst[:0])
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		s := ix.NewSearcher()
		dst := make([]vec.Neighbor, 0, 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for qi := range qs {
				dst, _ = s.Search(dst[:0], qs[qi], 10, 8)
			}
		}
	})
}
