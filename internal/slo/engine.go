package slo

import (
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SourceFunc samples the cumulative (good, total) event counts backing an
// objective. Sources are cumulative — the engine differences successive
// samples into window slots — so existing monotonic telemetry (histogram
// bucket counts, counters) plugs in without new per-event instrumentation.
type SourceFunc func() (good, total int64)

// LatencySource adapts a latency histogram: total is every observation,
// good the ones at or below threshold (rounded up to a bucket bound, see
// telemetry.Histogram.CountAtOrBelow).
func LatencySource(h *telemetry.Histogram, threshold time.Duration) SourceFunc {
	sec := threshold.Seconds()
	return func() (int64, int64) { return h.CountAtOrBelow(sec), h.Count() }
}

// AvailabilitySource adapts a total counter and an error counter:
// good = attempts - errors.
func AvailabilitySource(attempts, errors *telemetry.Counter) SourceFunc {
	return func() (int64, int64) {
		t := attempts.Value()
		e := errors.Value()
		if e > t {
			e = t
		}
		return t - e, t
	}
}

// WindowConfig sizes the engine's sliding windows. Slot durations trade
// resolution for memory; window length must be a multiple of its slot.
type WindowConfig struct {
	Fast, FastSlot time.Duration
	Slow, SlowSlot time.Duration
}

// DefaultWindows is the conventional fast/slow pairing: a 5-minute window
// at 10-second resolution to react, a 1-hour window at 1-minute resolution
// to confirm.
var DefaultWindows = WindowConfig{
	Fast: 5 * time.Minute, FastSlot: 10 * time.Second,
	Slow: time.Hour, SlowSlot: time.Minute,
}

// ring is one sliding window: a circle of per-slot good/total deltas.
type ring struct {
	slotDur  time.Duration
	slots    []winSlot
	cur      int
	curStart time.Time
	started  bool
}

type winSlot struct{ good, total int64 }

func newRing(window, slot time.Duration) *ring {
	n := int(window / slot)
	if n < 1 {
		n = 1
	}
	return &ring{slotDur: slot, slots: make([]winSlot, n)}
}

// advance rotates the ring so cur covers t, zeroing slots skipped over.
func (r *ring) advance(t time.Time) {
	if !r.started {
		r.started = true
		r.curStart = t.Truncate(r.slotDur)
		return
	}
	steps := int(t.Sub(r.curStart) / r.slotDur)
	if steps <= 0 {
		return
	}
	if steps > len(r.slots) {
		steps = len(r.slots)
	}
	for i := 0; i < steps; i++ {
		r.cur = (r.cur + 1) % len(r.slots)
		r.slots[r.cur] = winSlot{}
	}
	r.curStart = t.Truncate(r.slotDur)
}

func (r *ring) add(good, total int64) {
	r.slots[r.cur].good += good
	r.slots[r.cur].total += total
}

func (r *ring) sum() (good, total int64) {
	for _, s := range r.slots {
		good += s.good
		total += s.total
	}
	return good, total
}

// objState is one objective's runtime: its source, the cumulative baseline
// from the previous tick, and the two windows.
type objState struct {
	obj        Objective
	src        SourceFunc
	lastGood   int64
	lastTotal  int64
	primed     bool
	fast, slow *ring
	// cumGood/cumTotal accumulate deltas since the engine started — the
	// monotonic series exported as hermes_slo_*_total.
	cumGood, cumTotal int64
}

// Engine evaluates objectives over sliding windows. Safe for concurrent
// use; nil-safe like the rest of the observability plane.
type Engine struct {
	windows WindowConfig

	mu   sync.Mutex
	objs []*objState

	// expSent tracks what the cumulative counters have already been fed,
	// so Collect can Add exact deltas into monotonic telemetry counters.
	expMu   sync.Mutex
	expSent map[string]winSlot
}

// NewEngine returns an engine with DefaultWindows.
func NewEngine() *Engine { return NewEngineWindows(DefaultWindows) }

// NewEngineWindows returns an engine with custom windows (tests shrink
// them to step deterministically).
func NewEngineWindows(w WindowConfig) *Engine {
	return &Engine{windows: w, expSent: make(map[string]winSlot)}
}

// AddObjective registers an objective with its sample source.
func (e *Engine) AddObjective(o Objective, src SourceFunc) error {
	if err := o.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.objs = append(e.objs, &objState{
		obj:  o,
		src:  src,
		fast: newRing(e.windows.Fast, e.windows.FastSlot),
		slow: newRing(e.windows.Slow, e.windows.SlowSlot),
	})
	return nil
}

// Tick samples every source and folds the deltas into the windows. The
// first tick only establishes the cumulative baseline, so history from
// before the engine started never lands in a window; a source that moves
// backwards (process restart behind it) re-primes the same way.
func (e *Engine) Tick() {
	if e == nil {
		return
	}
	t := now()
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, os := range e.objs {
		good, total := os.src()
		os.fast.advance(t)
		os.slow.advance(t)
		if !os.primed || good < os.lastGood || total < os.lastTotal {
			os.primed = true
			os.lastGood, os.lastTotal = good, total
			continue
		}
		dGood, dTotal := good-os.lastGood, total-os.lastTotal
		os.lastGood, os.lastTotal = good, total
		if dTotal == 0 {
			continue
		}
		os.fast.add(dGood, dTotal)
		os.slow.add(dGood, dTotal)
		os.cumGood += dGood
		os.cumTotal += dTotal
	}
}

// WindowReport is one window's burn computation.
type WindowReport struct {
	Window      time.Duration
	Good, Total int64
	// BadFraction is (Total-Good)/Total, 0 on an empty window.
	BadFraction float64
	// BurnRate is BadFraction/(1-Target): 1.0 consumes budget exactly at
	// the sustainable rate.
	BurnRate float64
}

// Report is one objective's current evaluation.
type Report struct {
	Objective Objective
	Fast      WindowReport
	Slow      WindowReport
	// BudgetRemaining is the slow-window error budget left, in [0,1]:
	// 1 - Slow.BadFraction/(1-Target).
	BudgetRemaining float64
	// Burning means the fast-window burn rate has reached 1.0 — the budget
	// is draining faster than sustainable.
	Burning bool
	// CumGood/CumTotal are the engine-lifetime event counts.
	CumGood, CumTotal int64
}

func windowReport(r *ring, window time.Duration, target float64) WindowReport {
	good, total := r.sum()
	wr := WindowReport{Window: window, Good: good, Total: total}
	if total > 0 {
		wr.BadFraction = float64(total-good) / float64(total)
		wr.BurnRate = wr.BadFraction / (1 - target)
	}
	return wr
}

// Reports evaluates every objective, sorted by name.
func (e *Engine) Reports() []Report {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Report, 0, len(e.objs))
	for _, os := range e.objs {
		rep := Report{
			Objective: os.obj,
			Fast:      windowReport(os.fast, e.windows.Fast, os.obj.Target),
			Slow:      windowReport(os.slow, e.windows.Slow, os.obj.Target),
			CumGood:   os.cumGood,
			CumTotal:  os.cumTotal,
		}
		rep.BudgetRemaining = 1 - rep.Slow.BurnRate
		if rep.BudgetRemaining < 0 {
			rep.BudgetRemaining = 0
		}
		if rep.CumTotal == 0 {
			rep.BudgetRemaining = 1
		}
		rep.Burning = rep.Fast.BurnRate >= 1
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective.Name < out[j].Objective.Name })
	return out
}

// Collect publishes the hermes_slo_* metric family into reg; register it as
// a scrape-time collector (reg.RegisterCollector(engine.CollectInto(reg))
// or call directly). It ticks first so scrapes always see fresh windows.
func (e *Engine) Collect(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	e.Tick()
	for _, rep := range e.Reports() {
		name := rep.Objective.Name
		reg.Gauge("hermes_slo_burn_rate_ratio",
			"Error-budget burn rate per objective and window (1.0 = sustainable limit).",
			"objective", name, "window", "fast").Set(rep.Fast.BurnRate)
		reg.Gauge("hermes_slo_burn_rate_ratio",
			"Error-budget burn rate per objective and window (1.0 = sustainable limit).",
			"objective", name, "window", "slow").Set(rep.Slow.BurnRate)
		reg.Gauge("hermes_slo_budget_remaining_ratio",
			"Slow-window error budget remaining, 1 = untouched.",
			"objective", name).Set(rep.BudgetRemaining)

		// Cumulative counts export as true counters: feed each the delta
		// since the last Collect. Counter resolution is an idempotent
		// registry lookup, kept outside expMu so no lock is held across
		// label formatting.
		g := reg.Counter("hermes_slo_good_total",
			"Good events per objective since the engine started.", "objective", name)
		tot := reg.Counter("hermes_slo_events_total",
			"Evaluated events per objective since the engine started.", "objective", name)
		e.expMu.Lock()
		sent := e.expSent[name]
		e.expSent[name] = winSlot{good: rep.CumGood, total: rep.CumTotal}
		e.expMu.Unlock()
		g.Add(rep.CumGood - sent.good)
		tot.Add(rep.CumTotal - sent.total)
	}
}

// CollectInto adapts Collect to the telemetry.Registry collector signature.
func (e *Engine) CollectInto() func(*telemetry.Registry) {
	return func(reg *telemetry.Registry) { e.Collect(reg) }
}

// StartTicker runs Tick every interval on a background goroutine until the
// returned stop function is called (stop blocks until the goroutine exits).
func (e *Engine) StartTicker(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				e.Tick()
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
