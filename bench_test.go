package hermes

import (
	"io"
	"testing"
)

// benchScale keeps per-iteration work bounded so -bench completes quickly;
// use cmd/hermes-bench -scale full for the larger measured runs.
func benchScale() ExperimentScale {
	return ExperimentScale{Chunks: 2000, Dim: 16, Queries: 24, Shards: 10, Seed: 42}
}

// benchmarkExperiment regenerates one paper artifact per iteration and
// verifies it produced data.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tabs, err := RunExperiment(id, benchScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tabs {
			if len(t.Rows) == 0 {
				b.Fatalf("%s produced an empty table", id)
			}
			if err := t.WriteText(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// One benchmark per table and figure of the paper's evaluation.

func BenchmarkTable1Quantization(b *testing.B)   { benchmarkExperiment(b, "table1") }
func BenchmarkFig4HNSWvsIVF(b *testing.B)        { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5Stride(b *testing.B)           { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6LatencyBreakdown(b *testing.B) { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7Scaling(b *testing.B)          { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8PriorWork(b *testing.B)        { benchmarkExperiment(b, "fig8") }
func BenchmarkFig10ClusterSizing(b *testing.B)   { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11Accuracy(b *testing.B)        { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12DSE(b *testing.B)             { benchmarkExperiment(b, "fig12") }
func BenchmarkFig13Imbalance(b *testing.B)       { benchmarkExperiment(b, "fig13") }
func BenchmarkFig14EndToEnd(b *testing.B)        { benchmarkExperiment(b, "fig14") }
func BenchmarkFig16TTFT(b *testing.B)            { benchmarkExperiment(b, "fig16") }
func BenchmarkFig17Models(b *testing.B)          { benchmarkExperiment(b, "fig17") }
func BenchmarkFig18Throughput(b *testing.B)      { benchmarkExperiment(b, "fig18") }
func BenchmarkFig19ClusterSize(b *testing.B)     { benchmarkExperiment(b, "fig19") }
func BenchmarkFig20Platforms(b *testing.B)       { benchmarkExperiment(b, "fig20") }
func BenchmarkFig21DVFS(b *testing.B)            { benchmarkExperiment(b, "fig21") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationPrune(b *testing.B)    { benchmarkExperiment(b, "ablation-prune") }
func BenchmarkAblationRerank(b *testing.B)   { benchmarkExperiment(b, "ablation-rerank") }
func BenchmarkAblationSeeds(b *testing.B)    { benchmarkExperiment(b, "ablation-seeds") }
func BenchmarkAblationResidual(b *testing.B) { benchmarkExperiment(b, "ablation-residual") }
func BenchmarkValidateModel(b *testing.B)    { benchmarkExperiment(b, "validate-model") }
func BenchmarkAblationCacheHit(b *testing.B) { benchmarkExperiment(b, "ablation-cachehit") }

// Core-operation benchmarks: the building blocks behind every experiment.

func buildBenchStore(b *testing.B) (*Store, *Corpus) {
	b.Helper()
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 4000, Dim: 32, NumTopics: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	st, err := Build(c.Vectors, BuildOptions{NumShards: 10})
	if err != nil {
		b.Fatal(err)
	}
	return st, c
}

func BenchmarkHermesHierarchicalSearch(b *testing.B) {
	st, c := buildBenchStore(b)
	qs := c.Queries(64, 2)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := st.Search(qs.Vectors.Row(i%64), p)
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSearchAllBaseline(b *testing.B) {
	st, c := buildBenchStore(b)
	qs := c.Queries(64, 2)
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := st.SearchAll(qs.Vectors.Row(i%64), p)
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkMonolithicSearch(b *testing.B) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 4000, Dim: 32, NumTopics: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mono, err := BuildMonolithic(c.Vectors, 8, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	qs := c.Queries(64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mono.Search(qs.Vectors.Row(i%64), 5, 128)
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkDisaggregation(b *testing.B) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 2000, Dim: 16, NumTopics: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(c.Vectors, BuildOptions{NumShards: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoder(b *testing.B) {
	enc := NewEncoder(768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.Encode("what is the capital of the retrieval augmented nation")
	}
}

func BenchmarkPipelineModel(b *testing.B) {
	tabs, err := RunExperiment("fig16", benchScale())
	if err != nil || len(tabs) == 0 {
		b.Fatalf("pipeline model unavailable: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment("fig16", benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}
