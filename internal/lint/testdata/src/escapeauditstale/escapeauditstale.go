// Package escapeauditstale commits an alloc.lock but no longer annotates
// any function //hermes:hotpath: the lock is a leftover.
package escapeauditstale // want "declares no //hermes:hotpath functions"

func cold(x int) int { return x + 1 }

var _ = cold
