package rerank

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func candidates(ids ...int64) []vec.Neighbor {
	out := make([]vec.Neighbor, len(ids))
	for i, id := range ids {
		out[i] = vec.Neighbor{ID: id, Score: float32(i)}
	}
	return out
}

func TestL2RerankOrdersbyDistance(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{0, 0}, {1, 0}, {5, 5}})
	r := NewFromMatrix(L2, m)
	q := []float32{0.9, 0}
	ranked := r.Rerank(q, candidates(0, 1, 2))
	if ranked[0].ID != 1 || ranked[1].ID != 0 || ranked[2].ID != 2 {
		t.Fatalf("L2 order wrong: %+v", ranked)
	}
}

func TestInnerProductRerank(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{1, 0}, {0, 1}, {2, 0}})
	r := NewFromMatrix(InnerProduct, m)
	q := []float32{1, 0}
	ranked := r.Rerank(q, candidates(0, 1, 2))
	// IP with q=(1,0): row2=2, row0=1, row1=0.
	if ranked[0].ID != 2 || ranked[1].ID != 0 || ranked[2].ID != 1 {
		t.Fatalf("IP order wrong: %+v", ranked)
	}
	if ranked[0].Score != 2 {
		t.Fatalf("IP score = %v", ranked[0].Score)
	}
}

func TestCosineRerankIgnoresMagnitude(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{10, 0}, {0.1, 0.0999}})
	r := NewFromMatrix(Cosine, m)
	q := []float32{1, 1}
	ranked := r.Rerank(q, candidates(0, 1))
	// Row 1 points along (1,1); row 0 along (1,0). Cosine prefers row 1
	// despite its tiny magnitude.
	if ranked[0].ID != 1 {
		t.Fatalf("cosine order wrong: %+v", ranked)
	}
}

func TestRerankDropsUnresolvableIDs(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{1, 1}})
	r := NewFromMatrix(L2, m)
	ranked := r.Rerank([]float32{0, 0}, candidates(0, 5, -1))
	if len(ranked) != 1 || ranked[0].ID != 0 {
		t.Fatalf("unresolvable IDs not dropped: %+v", ranked)
	}
}

func TestBest(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{0, 0}, {3, 3}})
	r := NewFromMatrix(L2, m)
	best, ok := r.Best([]float32{3, 3.1}, candidates(0, 1))
	if !ok || best.ID != 1 {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
	if _, ok := r.Best([]float32{0, 0}, candidates(99)); ok {
		t.Fatal("Best with no resolvable candidates should report false")
	}
}

func TestEmptyCandidates(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{0}})
	r := NewFromMatrix(L2, m)
	if out := r.Rerank([]float32{0}, nil); len(out) != 0 {
		t.Fatalf("empty candidates produced %v", out)
	}
}

func TestNilLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(L2, nil)
}

func TestMetricString(t *testing.T) {
	if InnerProduct.String() != "inner-product" || L2.String() != "l2" || Cosine.String() != "cosine" {
		t.Fatal("metric names wrong")
	}
	if Metric(9).String() == "" {
		t.Fatal("unknown metric should render")
	}
}

// Property: reranking with L2 against full-precision vectors never produces
// a worse top-1 true distance than the compressed-domain ordering it is
// given.
func TestRerankImprovesTop1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := vec.NewMatrix(50, 8)
	for i := 0; i < 50; i++ {
		for d := 0; d < 8; d++ {
			m.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	r := NewFromMatrix(L2, m)
	for trial := 0; trial < 25; trial++ {
		q := make([]float32, 8)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		// Candidate list in random order (a noisy index ordering).
		cand := candidates(int64(rng.Intn(50)), int64(rng.Intn(50)), int64(rng.Intn(50)), int64(rng.Intn(50)))
		ranked := r.Rerank(q, cand)
		top := ranked[0]
		for _, c := range cand {
			if vec.L2Squared(q, m.Row(int(c.ID))) < vec.L2Squared(q, m.Row(int(top.ID)))-1e-6 {
				t.Fatalf("rerank top-1 %d is not the closest candidate", top.ID)
			}
		}
	}
}

// Stability: equal-scored candidates keep their input order.
func TestRerankStable(t *testing.T) {
	m := vec.MatrixFromRows([][]float32{{1, 0}, {1, 0}})
	r := NewFromMatrix(InnerProduct, m)
	ranked := r.Rerank([]float32{1, 0}, candidates(1, 0))
	if ranked[0].ID != 1 || ranked[1].ID != 0 {
		t.Fatalf("equal scores should preserve order: %+v", ranked)
	}
}
