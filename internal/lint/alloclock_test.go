package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// markerLine returns the 1-based line of the first occurrence of marker in
// the file — the anchor for fabricated compiler diagnostics, so fixture
// edits move the diags along instead of rotting a line table.
func markerLine(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not found in %s", marker, path)
	return 0
}

// fixtureGoVersion is the toolchain stamp shared by the fabricated
// EscapeDiags and the hand-written fixture alloc.lock — fake on purpose, so
// the fixture never depends on the host toolchain.
const fixtureGoVersion = "go1.99.9-fixture"

// fabricatedDiags builds the compiler diagnostics the escapeaudit fixture's
// alloc.lock was written against: Clean matches, Boxed/Leaky/Gained carry
// unrecorded diags, LostInline/Stale/Unrecorded carry none.
func fabricatedDiags(t *testing.T, pkg *Package) *EscapeDiags {
	t.Helper()
	file := pkg.Fset.Position(pkg.Files[0].Pos()).Filename
	diag := func(marker string, kind EscapeKind, text string) EscapeDiag {
		return EscapeDiag{File: file, Line: markerLine(t, file, marker), Col: 2, Kind: kind, Text: text}
	}
	return &EscapeDiags{
		GoVersion: fixtureGoVersion,
		byFile: map[string][]EscapeDiag{file: {
			diag("func Clean(p *int)", KindLeak, "leaking param: p to result ~r0 level=0"),
			diag("x := 42", KindEscape, "moved to heap: x"),
			diag("func Leaky(q", KindLeak, "leaking param: q"),
			diag("return tiny(x)", KindInline, "escapeaudit.tiny"),
		}},
	}
}

// TestEscapeAudit drives every diff class through the want harness: an
// unrecorded escape and leak (regressions at the compiler's position), an
// unrecorded inline, a recorded inline that vanished, a recorded escape that
// vanished, an unrecorded hotpath function, and a locked function that no
// longer exists.
func TestEscapeAudit(t *testing.T) {
	pkg := loadFixture(t, "escapeaudit")
	runWantFixturePkg(t, pkg, []*Analyzer{EscapeAudit}, RunOptions{Escape: fabricatedDiags(t, pkg)})
}

// TestEscapeAuditNilEscape pins the version-gate contract: with no compiler
// diagnostics (driver skipped the build), the analyzer is a no-op even on a
// package whose lock is full of divergence.
func TestEscapeAuditNilEscape(t *testing.T) {
	pkg := loadFixture(t, "escapeaudit")
	if fs := RunPackageOpts(pkg, []*Analyzer{EscapeAudit}, RunOptions{}); len(fs) != 0 {
		t.Errorf("nil Escape should disable the pass, got %d finding(s): %v", len(fs), fs)
	}
}

// TestEscapeAuditVersionMismatch: a lock recorded under one toolchain is not
// diffed against another's diagnostics — one finding, then stop.
func TestEscapeAuditVersionMismatch(t *testing.T) {
	pkg := loadFixture(t, "escapeaudit")
	escape := fabricatedDiags(t, pkg)
	escape.GoVersion = "go0.0.0"
	fs := RunPackageOpts(pkg, []*Analyzer{EscapeAudit}, RunOptions{Escape: escape})
	if len(fs) != 1 {
		t.Fatalf("got %d finding(s), want exactly 1 version-mismatch: %v", len(fs), fs)
	}
	for _, w := range []string{"recorded with " + fixtureGoVersion, "toolchain is go0.0.0"} {
		if !strings.Contains(fs[0].Msg, w) {
			t.Errorf("finding missing %q: %s", w, fs[0].Msg)
		}
	}
}

func TestEscapeAuditMissingLock(t *testing.T) {
	pkg := loadFixture(t, "escapeauditmissing")
	runWantFixturePkg(t, pkg, []*Analyzer{EscapeAudit},
		RunOptions{Escape: &EscapeDiags{GoVersion: fixtureGoVersion, byFile: map[string][]EscapeDiag{}}})
}

func TestEscapeAuditStaleLock(t *testing.T) {
	pkg := loadFixture(t, "escapeauditstale")
	runWantFixturePkg(t, pkg, []*Analyzer{EscapeAudit},
		RunOptions{Escape: &EscapeDiags{GoVersion: fixtureGoVersion, byFile: map[string][]EscapeDiag{}}})
}

// TestGenerateAllocLockRoundTrip: what the artifact generator writes, the
// parser reads back verbatim — kinds, per-function multisets, version.
func TestGenerateAllocLockRoundTrip(t *testing.T) {
	pkg := loadFixture(t, "escapeaudit")
	data := GenerateAllocLock(pkg, fabricatedDiags(t, pkg))
	if data == nil {
		t.Fatal("GenerateAllocLock returned nil for a hotpath package")
	}
	lock, err := parseAllocLock(data)
	if err != nil {
		t.Fatalf("parseAllocLock(generated): %v", err)
	}
	if lock.GoVersion != fixtureGoVersion {
		t.Errorf("GoVersion = %q, want %q", lock.GoVersion, fixtureGoVersion)
	}
	wantFuncs := map[string][]allocEntry{
		"Clean":      {{KindLeak, "leaking param: p to result ~r0 level=0"}},
		"Boxed":      {{KindEscape, "moved to heap: x"}},
		"Leaky":      {{KindLeak, "leaking param: q"}},
		"Gained":     {{KindInline, "escapeaudit.tiny"}},
		"LostInline": nil,
		"Stale":      nil,
		"Unrecorded": nil,
	}
	if len(lock.Funcs) != len(wantFuncs) {
		t.Errorf("got %d func blocks %v, want %d", len(lock.Funcs), lock.Order, len(wantFuncs))
	}
	for name, want := range wantFuncs {
		got, ok := lock.Funcs[name]
		if !ok {
			t.Errorf("generated lock missing func %s", name)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("func %s: got %d entries %v, want %v", name, len(got), got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("func %s entry %d: got %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
	// Empty-budget functions still get a block: the empty budget is the
	// contract (a new escape there must be a diff, not an unrecorded func).
	if !strings.Contains(string(data), "\nfunc Stale\n") {
		t.Errorf("generated lock lost the empty budget block for Stale:\n%s", data)
	}
}

func TestParseAllocLockErrors(t *testing.T) {
	cases := map[string]string{
		"no version":   "func A\n\tescape moved to heap: x\n",
		"bad kind":     "# go go1.24.0\nfunc A\n\tboom moved to heap: x\n",
		"entry first":  "# go go1.24.0\n\tescape moved to heap: x\n",
		"empty func":   "# go go1.24.0\nfunc \n",
		"dup func":     "# go go1.24.0\nfunc A\nfunc A\n",
		"stray line":   "# go go1.24.0\nwhat is this\n",
		"kind no text": "# go go1.24.0\nfunc A\n\tescape\n",
	}
	for name, in := range cases {
		if _, err := parseAllocLock([]byte(in)); err == nil {
			t.Errorf("%s: parseAllocLock accepted %q", name, in)
		}
	}
}

// TestParseEscapeOutput pins the -m=2 line discipline: per-flow headers
// (trailing colon) and indented flow lines are dropped so each diagnostic is
// one entry per site, inline texts lose their prefix, ignorable verdicts and
// out-of-module paths vanish, and entries sort by position.
func TestParseEscapeOutput(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	out := strings.Join([]string{
		"# repro/internal/ivf",
		"a.go:10:8: &slot{...} escapes to heap:",
		"a.go:10:8:   flow: s = &{storage for &slot{...}}:",
		"a.go:10:8:     from &slot{...} (spill) at a.go:10:8",
		"a.go:10:8: &slot{...} escapes to heap",
		"a.go:4:6: moved to heap: wg",
		"a.go:2:7: leaking param: l",
		"a.go:2:7: parameter l leaks to {heap} with derefs=0:",
		"a.go:3:9: inlining call to vec.(*TopK).Reset",
		"a.go:5:5: x does not escape",
		"a.go:6:6: can inline tiny",
		filepath.Join(string(filepath.Separator), "goroot", "src", "fmt", "print.go") + ":100:1: moved to heap: p",
		"",
	}, "\n")
	byFile := parseEscapeOutput(root, out)
	file := filepath.Join(root, "a.go")
	got := byFile[file]
	want := []EscapeDiag{
		{File: file, Line: 2, Col: 7, Kind: KindLeak, Text: "leaking param: l"},
		{File: file, Line: 3, Col: 9, Kind: KindInline, Text: "vec.(*TopK).Reset"},
		{File: file, Line: 4, Col: 6, Kind: KindEscape, Text: "moved to heap: wg"},
		{File: file, Line: 10, Col: 8, Kind: KindEscape, Text: "&slot{...} escapes to heap"},
	}
	if len(byFile) != 1 {
		t.Errorf("got diagnostics for %d files, want 1 (stdlib path dropped)", len(byFile))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diags %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestModuleAllocLocksCurrent locks the real serving-path budgets: every
// committed alloc.lock must be byte-identical to a regeneration from live
// compiler diagnostics, and escapeaudit must be clean on those packages.
// Skipped (like the driver skips) when the running toolchain differs from
// the recorded one. If this fails after a deliberate hot-path change, run
// `go run ./cmd/hermes-lint -update-alloclock ./...`.
func TestModuleAllocLocksCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go build -gcflags=-m=2 over the module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(l.ModuleRoot + string(filepath.Separator) + "...")
	if err != nil {
		t.Fatalf("Load module: %v", err)
	}
	dirs := HotPathDirs(pkgs)
	if len(dirs) == 0 {
		t.Fatal("module has no //hermes:hotpath packages; the escapeaudit tentpole should cover several")
	}
	runner := NewEscapeRunner(l.ModuleRoot)
	version, err := runner.GoVersion()
	if err != nil {
		t.Fatalf("GoVersion: %v", err)
	}
	for _, rec := range AllocLockGoVersions(dirs) {
		if rec != version {
			t.Skipf("alloc.lock recorded with %s, toolchain is %s", rec, version)
		}
	}
	escape, err := runner.Run(dirs)
	if err != nil {
		t.Fatalf("EscapeRunner.Run: %v", err)
	}
	byDir := make(map[string]*Package, len(pkgs))
	for _, pkg := range pkgs {
		byDir[pkg.Dir] = pkg
	}
	for _, dir := range dirs {
		pkg := byDir[dir]
		committed, err := os.ReadFile(filepath.Join(dir, AllocLockFile))
		if err != nil {
			t.Errorf("%s: hotpath package without committed %s: %v", pkg.Path, AllocLockFile, err)
			continue
		}
		if got := GenerateAllocLock(pkg, escape); string(got) != string(committed) {
			t.Errorf("%s: committed %s is stale; run `go run ./cmd/hermes-lint -update-alloclock ./...`\n--- generated ---\n%s", pkg.Path, AllocLockFile, got)
		}
		for _, f := range RunPackageOpts(pkg, []*Analyzer{EscapeAudit}, RunOptions{Escape: escape}) {
			t.Errorf("%s: unexpected escapeaudit finding: %s", pkg.Path, f)
		}
	}
}
