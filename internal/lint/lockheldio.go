package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeldIO flags code that holds a sync.Mutex/RWMutex across network or
// file I/O, channel operations, or time.Sleep. A lock held across a blocking
// operation turns one slow peer into a stalled shard: every other goroutine
// queuing on the mutex inherits the wire latency, which is exactly the
// serving-path contention TeleRAG/VectorLiteRAG identify as the source of
// retrieval tail latency. Callees are classified with the cross-package I/O
// facts, so an innocent-looking helper three packages above a socket write
// is still caught.
//
// The analysis is lexical within one function: held locks are tracked
// through a statement walk (lockWalker, shared with the fact engine's
// lock-order edge extraction), branches are joined by intersecting the held
// sets of the paths that fall through (a branch ending in return/panic/break
// contributes nothing), and function literals are excluded — they run on
// their own goroutine's schedule with their own locking discipline.
//
// Deliberate designs exist — a per-connection mutex that serializes request/
// response exchanges IS the point of the lock — and take a one-line
// //lint:ignore lockheldio <reason> at the flagged site.
var LockHeldIO = &Analyzer{
	Name:      "lockheldio",
	Doc:       "mutex held across network/file I/O, channel ops, or time.Sleep stalls every goroutine queuing on it",
	Run:       runLockHeldIO,
	TestFiles: true,
}

func runLockHeldIO(p *Pass) {
	report := func(pos token.Pos, held []heldLock, what string) {
		p.Reportf(pos, "%s while %s is held; one blocked goroutine here stalls everyone queuing on the lock — release it first, or suppress with //lint:ignore lockheldio <reason>", what, held[len(held)-1].expr)
	}
	lw := &lockWalker{
		info: p.Info,
		onNode: func(n ast.Node, held []heldLock) {
			switch x := n.(type) {
			case *ast.SendStmt:
				report(x.Pos(), held, "channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(x.Pos(), held, "channel receive")
				}
			case *ast.SelectStmt:
				report(x.Pos(), held, "select statement")
			case *ast.RangeStmt:
				if t := p.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						report(x.Pos(), held, "range over channel")
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(p.Info, x); fn != nil && p.Facts.PerformsIO(fn) {
					report(x.Pos(), held, "call to "+calleeDisplay(fn)+", which performs I/O")
				}
			}
		},
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				lw.stmts(fd.Body.List, nil)
			}
		}
	}
}

// heldLock is one acquired mutex, identified for set arithmetic by the
// source text of the receiver it was locked through; sel retains the lock
// call's selector so consumers can resolve a class identity (mutexID).
type heldLock struct {
	expr string
	sel  *ast.SelectorExpr
	pos  token.Pos
}

// lockWalker walks one function body in source order tracking the held-lock
// set. Every walk method returns the held set at its exit plus whether the
// construct terminates (never falls through to the next statement). The
// walker itself only tracks; consumers observe through two hooks:
//
//   - onNode(n, held) fires for select/range-over-channel statements and
//     for every node of every inspected expression (never inside function
//     literals), with len(held) > 0 guaranteed;
//   - onAcquire(l, held) fires when a Lock/RLock is taken, with the held
//     set as of just before the acquisition.
type lockWalker struct {
	info      *types.Info
	onNode    func(n ast.Node, held []heldLock)
	onAcquire func(l heldLock, held []heldLock)
}

func (lw *lockWalker) stmts(list []ast.Stmt, held []heldLock) (out []heldLock, terminates bool) {
	for _, stmt := range list {
		var term bool
		held, term = lw.stmt(stmt, held)
		terminates = terminates || term
	}
	return held, terminates
}

func (lw *lockWalker) stmt(stmt ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if sel, op, ok := lockOp(lw.info, call); ok {
				recv := types.ExprString(sel.X)
				switch op {
				case "Lock", "RLock":
					l := heldLock{expr: recv, sel: sel, pos: s.Pos()}
					if lw.onAcquire != nil {
						lw.onAcquire(l, held)
					}
					return append(held[:len(held):len(held)], l), false
				case "Unlock", "RUnlock":
					return removeLock(held, recv), false
				}
			}
		}
		lw.scan(s, held)
		return held, isPanicCall(lw.info, s.X)
	case *ast.ReturnStmt:
		lw.scan(s, held)
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; fallthrough moves
		// into the next case body, which for lock purposes is the same.
		return held, true
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at function exit and go statements on another
		// goroutine; neither blocks this statement's critical section. A
		// deferred Unlock in particular just keeps the lock held — the I/O
		// scan of the following statements does the judging.
		return held, false
	case *ast.BlockStmt:
		return lw.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		lw.scan(s.Cond, held)
		type path struct {
			held []heldLock
			term bool
		}
		paths := make([]path, 0, 2)
		bodyHeld, bodyTerm := lw.stmts(s.Body.List, held)
		paths = append(paths, path{bodyHeld, bodyTerm})
		if s.Else != nil {
			elseHeld, elseTerm := lw.stmt(s.Else, held)
			paths = append(paths, path{elseHeld, elseTerm})
		} else {
			paths = append(paths, path{held, false})
		}
		return joinPaths(held, []([]heldLock){paths[0].held, paths[1].held}, []bool{paths[0].term, paths[1].term})
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.scan(s.Cond, held)
		}
		// The body is walked for reporting; loop bodies are assumed lock-
		// balanced (an unbalanced one is its own bug), so the held set
		// passes through unchanged.
		lw.stmts(s.Body.List, held)
		return held, false
	case *ast.RangeStmt:
		if lw.onNode != nil && len(held) > 0 {
			lw.onNode(s, held)
		}
		lw.scan(s.X, held)
		lw.stmts(s.Body.List, held)
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.scan(s.Tag, held)
		}
		return lw.caseBodies(caseClauses(s.Body), held, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = lw.stmt(s.Init, held)
		}
		return lw.caseBodies(caseClauses(s.Body), held, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		if lw.onNode != nil && len(held) > 0 {
			lw.onNode(s, held)
		}
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// A select always executes exactly one clause, so there is no
		// implicit fall-through path.
		return lw.caseBodies(bodies, held, true)
	case *ast.LabeledStmt:
		return lw.stmt(s.Stmt, held)
	default:
		lw.scan(stmt, held)
		return held, false
	}
}

// caseBodies joins the case bodies of a switch/select: the held set after is
// the intersection over every non-terminating path, including the implicit
// no-case-matched path when there is no default clause.
func (lw *lockWalker) caseBodies(bodies [][]ast.Stmt, held []heldLock, exhaustive bool) ([]heldLock, bool) {
	var helds []([]heldLock)
	var terms []bool
	for _, body := range bodies {
		h, t := lw.stmts(body, held)
		helds = append(helds, h)
		terms = append(terms, t)
	}
	if !exhaustive || len(bodies) == 0 {
		helds = append(helds, held)
		terms = append(terms, false)
	}
	return joinPaths(held, helds, terms)
}

// joinPaths merges branch outcomes: paths that terminate never reach the
// next statement and contribute nothing; the survivors' held sets intersect
// (a lock counts as held after the branch only if every live path still
// holds it). If every path terminates, so does the whole construct.
func joinPaths(incoming []heldLock, helds []([]heldLock), terms []bool) ([]heldLock, bool) {
	var live []([]heldLock)
	for i, h := range helds {
		if !terms[i] {
			live = append(live, h)
		}
	}
	if len(live) == 0 {
		return incoming, true
	}
	out := live[0]
	for _, h := range live[1:] {
		out = intersectHeld(out, h)
	}
	return out, false
}

func intersectHeld(a, b []heldLock) []heldLock {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	inB := make(map[string]bool, len(b))
	for _, l := range b {
		inB[l.expr] = true
	}
	var out []heldLock
	for _, l := range a {
		if inB[l.expr] {
			out = append(out, l)
		}
	}
	return out
}

// scan feeds every node of a statement or expression to onNode while locks
// are held, without descending into function literals.
func (lw *lockWalker) scan(n ast.Node, held []heldLock) {
	if n == nil || len(held) == 0 || lw.onNode == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil {
			lw.onNode(m, held)
		}
		return true
	})
}

func calleeDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return receiverName(sig.Recv().Type()) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isPanicCall reports whether expr is a call to the panic builtin or a
// known never-returns function (os.Exit, log.Fatal*).
func isPanicCall(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			_, isBuiltin := info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			path, name := fn.Pkg().Path(), fn.Name()
			if path == "os" && name == "Exit" {
				return true
			}
			if path == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln" || name == "Panic" || name == "Panicf" || name == "Panicln") {
				return true
			}
		}
	}
	return false
}

// lockOp matches call as a <recv>.Lock/RLock/Unlock/RUnlock() resolving
// into package sync (covering Mutex, RWMutex, and methods promoted from an
// embedded mutex), returning the selector and the method name.
func lockOp(info *types.Info, call *ast.CallExpr) (sel *ast.SelectorExpr, op string, ok bool) {
	sel, ok = call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel, sel.Sel.Name, true
}

// removeLock pops the most recent acquisition through the same receiver
// expression.
func removeLock(held []heldLock, recv string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].expr == recv {
			out := make([]heldLock, 0, len(held)-1)
			out = append(out, held[:i]...)
			return append(out, held[i+1:]...)
		}
	}
	return held
}

func caseClauses(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
