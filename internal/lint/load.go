package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package.
type Package struct {
	// Path is the import path (module-relative when the directory lives
	// under the module root, else the directory base name).
	Path string
	// Dir is the absolute directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check problems. Analysis proceeds
	// best-effort: go/types fills Info for everything it can resolve.
	TypeErrors []error
}

// Loader discovers, parses, and type-checks packages of the enclosing Go
// module without any dependency on the go tool or golang.org/x/tools:
// module-internal imports are resolved recursively from source, and
// standard-library imports go through go/importer's source importer.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string
	GoVersion  string
	// IncludeTests additionally parses and type-checks each package's
	// in-package _test.go files (external foo_test packages are not
	// loaded — they form a separate package with their own import
	// universe). Set it before the first Load call: packages reached as
	// dependencies of other packages always load without tests.
	IncludeTests bool

	std      types.Importer
	cache    map[string]*Package // keyed by absolute dir
	loading  map[string]bool     // cycle guard, keyed by absolute dir
	hard     []error             // parse/build failures, including in dependencies
	hardSeen map[string]bool     // dirs already recorded in hard
}

// NewLoader locates the module enclosing startDir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(startDir string) (*Loader, error) {
	abs, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, goVersion, err := parseGoMod(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		GoVersion:  goVersion,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
		hardSeen:   make(map[string]bool),
	}, nil
}

func parseGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
		}
		if rest, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(rest)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("lint: no module directive in %s", path)
	}
	return modPath, goVersion, nil
}

// Load resolves package patterns relative to the current directory. A
// pattern ending in "/..." walks that directory tree (skipping testdata,
// vendor, and hidden directories — point at a testdata package explicitly
// to lint it); any other pattern names a single package directory.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !dirSet[dir] {
			dirSet[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			absRoot, err := filepath.Abs(root)
			if err != nil {
				return nil, err
			}
			err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != absRoot && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !hasGoFiles(abs) {
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		add(abs)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir, l.IncludeTests)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// Cached returns every module package loaded so far — pattern targets and
// packages pulled in as their dependencies — in deterministic (path, dir)
// order. It is the input ComputeFacts wants: facts must cover the whole
// reachable module, not just the pattern targets.
func (l *Loader) Cached() []*Package {
	var pkgs []*Package
	for _, pkg := range l.cache {
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		if pkgs[i].Dir != pkgs[j].Dir {
			return pkgs[i].Dir < pkgs[j].Dir
		}
		return len(pkgs[i].Files) < len(pkgs[j].Files)
	})
	return pkgs
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute directory to its import path.
func (l *Loader) importPathFor(dir string) string {
	if rel, err := filepath.Rel(l.ModuleRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(dir)
}

// loadDir parses and type-checks the package in dir, caching the result.
// Returns (nil, nil) when the directory holds no buildable non-test files.
// withTests additionally parses the in-package _test.go files; the with- and
// without-test variants cache separately, and dependency resolution (Import)
// always uses the plain variant, so a test file importing a package that
// imports the package under test cannot manufacture an import cycle.
func (l *Loader) loadDir(dir string, withTests bool) (*Package, error) {
	key := dir
	if withTests {
		key = dir + "\x00tests"
	}
	if pkg, ok := l.cache[key]; ok {
		return pkg, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			l.cache[key] = nil
			return nil, nil
		}
		return nil, l.recordHard(dir, fmt.Errorf("lint: %s: %w", dir, err))
	}

	pkg := &Package{
		Path: l.importPathFor(dir),
		Dir:  dir,
		Fset: l.Fset,
	}
	names := bp.GoFiles
	if withTests {
		names = append(names[:len(names):len(names)], bp.TestGoFiles...)
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, l.recordHard(dir, fmt.Errorf("lint: %w", err))
		}
		pkg.Files = append(pkg.Files, f)
	}

	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    l,
		GoVersion:   l.GoVersion,
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Check returns a usable (if incomplete) package even on error; the
	// collected TypeErrors are surfaced by the driver as warnings.
	tpkg, _ := conf.Check(pkg.Path, l.Fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
	l.cache[key] = pkg
	return pkg, nil
}

// recordHard notes a hard (parse or build) failure, once per directory, and
// returns err for the caller to propagate. Hard failures in *dependency*
// packages would otherwise vanish: the types.Config.Error handler files
// them as type errors of the importing package, analysis proceeds
// best-effort, and a broken file exits 0. The driver checks HardErrors
// after loading so broken code fails the run with a load error (exit 2),
// distinct from findings (exit 1).
func (l *Loader) recordHard(dir string, err error) error {
	if !l.hardSeen[dir] {
		l.hardSeen[dir] = true
		l.hard = append(l.hard, err)
	}
	return err
}

// HardErrors returns the parse/build failures encountered so far, including
// those in packages reached only as dependencies.
func (l *Loader) HardErrors() []error {
	return l.hard
}

// Import implements types.Importer: module-internal paths are loaded from
// source under the module root; everything else (the standard library)
// falls back to go/importer's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.loadDir(dir, false)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("lint: no package in %s", dir)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
