// Package batcher is the serving front-end that turns individual query
// arrivals into the batches everything downstream is optimized for. The
// paper's systems are evaluated at fixed batch sizes (32-256) because FAISS
// scan throughput, GPU prefill, and Hermes' per-node deep loads all amortize
// across a batch; a real deployment gets single queries and must form those
// batches itself. The batcher groups arrivals until either MaxBatch queries
// are waiting or MaxWait has elapsed since the first, trading a bounded
// queueing delay for batch efficiency.
package batcher

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/evlog"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// ProcessFunc executes one batch and returns per-query results,
// index-aligned with the input. distsearch.Coordinator.SearchBatch wrapped
// in a closure is the canonical implementation.
type ProcessFunc func(queries [][]float32) ([][]vec.Neighbor, error)

// Config sizes the batcher.
type Config struct {
	// MaxBatch flushes as soon as this many queries are waiting.
	MaxBatch int
	// MaxWait flushes a partial batch this long after its first arrival.
	MaxWait time.Duration
	// Process executes flushed batches.
	Process ProcessFunc
	// Telemetry, when non-nil, receives the live queue-depth gauge and the
	// batch-size histogram (hermes_batcher_*). Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Events, when non-nil, records lifecycle edges (the Close-time drain
	// of a partial batch). Nil disables event recording at zero cost.
	Events *evlog.Log
}

// Batcher groups queries into batches. Safe for concurrent Search calls.
type Batcher struct {
	cfg     Config
	mu      sync.Mutex
	pending []*request
	timer   *time.Timer
	closed  bool
	// timerFlushes counts armed wait timers whose flushTimer callback has
	// not finished: time.AfterFunc runs the callback on its own goroutine,
	// and Timer.Stop does not wait for a callback already in flight. Close
	// drains this before returning so no flush (and no cfg.Process call)
	// outlives it.
	timerFlushes sync.WaitGroup

	flushes, queriesServed int64

	queueDepth *telemetry.Gauge
	batchSize  *telemetry.Histogram
}

type request struct {
	query []float32
	done  chan response
}

type response struct {
	neighbors []vec.Neighbor
	err       error
}

// New validates the configuration and returns a ready batcher.
func New(cfg Config) (*Batcher, error) {
	if cfg.MaxBatch <= 0 {
		return nil, fmt.Errorf("batcher: MaxBatch must be positive")
	}
	if cfg.MaxWait <= 0 {
		return nil, fmt.Errorf("batcher: MaxWait must be positive")
	}
	if cfg.Process == nil {
		return nil, fmt.Errorf("batcher: Process is required")
	}
	return &Batcher{
		cfg: cfg,
		//lint:ignore metricname queue depth is a resident count, not a flow or a unit-bearing quantity
		queueDepth: cfg.Telemetry.Gauge("hermes_batcher_queue_depth",
			"Queries waiting for their batch to flush."),
		//lint:ignore metricname batch size is a dimensionless query count per flush
		batchSize: cfg.Telemetry.Histogram("hermes_batcher_batch_size",
			"Queries per flushed batch.", telemetry.DefSizeBuckets),
	}, nil
}

// Search enqueues a query and blocks until its batch completes.
func (b *Batcher) Search(q []float32) ([]vec.Neighbor, error) {
	req := &request{query: q, done: make(chan response, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("batcher: closed")
	}
	b.pending = append(b.pending, req)
	b.queueDepth.Set(float64(len(b.pending)))
	switch {
	case len(b.pending) >= b.cfg.MaxBatch:
		batch := b.takeLocked()
		b.mu.Unlock()
		b.flush(batch)
	case len(b.pending) == 1:
		// First arrival arms the wait timer. The Add is balanced by
		// flushTimer when the callback runs, or by takeLocked when a
		// successful Stop proves it never will.
		b.timerFlushes.Add(1)
		b.timer = time.AfterFunc(b.cfg.MaxWait, b.flushTimer)
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	resp := <-req.done
	return resp.neighbors, resp.err
}

// takeLocked detaches the pending batch; callers hold b.mu.
func (b *Batcher) takeLocked() []*request {
	batch := b.pending
	b.pending = nil
	b.queueDepth.Set(0)
	if b.timer != nil {
		if b.timer.Stop() {
			// Stopped before firing: the callback never runs, so settle
			// its Add here. A false return means flushTimer is already
			// running (or queued) and settles it itself.
			b.timerFlushes.Done()
		}
		b.timer = nil
	}
	return batch
}

func (b *Batcher) flushTimer() {
	defer b.timerFlushes.Done()
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.flush(batch)
}

func (b *Batcher) flush(batch []*request) {
	if len(batch) == 0 {
		return
	}
	queries := make([][]float32, len(batch))
	for i, r := range batch {
		queries[i] = r.query
	}
	b.batchSize.Observe(float64(len(queries)))
	results, err := b.cfg.Process(queries)
	if err == nil && len(results) != len(batch) {
		err = fmt.Errorf("batcher: Process returned %d results for %d queries", len(results), len(batch))
	}
	b.mu.Lock()
	b.flushes++
	b.queriesServed += int64(len(batch))
	b.mu.Unlock()
	for i, r := range batch {
		if err != nil {
			r.done <- response{err: err}
			continue
		}
		r.done <- response{neighbors: results[i]}
	}
}

// Stats reports batching effectiveness.
type Stats struct {
	Flushes, QueriesServed int64
	// MeanBatch is queries per flush.
	MeanBatch float64
}

// Collect publishes the snapshot into reg as hermes_batcher_* gauges; wire
// it as a scrape-time collector. A nil registry is a no-op.
func (s Stats) Collect(reg *telemetry.Registry) {
	reg.Gauge("hermes_batcher_flushes_total", "Cumulative flushed batches.").Set(float64(s.Flushes))
	reg.Gauge("hermes_batcher_queries_served_total", "Cumulative queries served through batches.").Set(float64(s.QueriesServed))
	//lint:ignore metricname mean batch size is a dimensionless count-per-flush, not a unit-bearing quantity
	reg.Gauge("hermes_batcher_mean_batch", "Mean queries per flush.").Set(s.MeanBatch)
}

// Stats snapshots the counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{Flushes: b.flushes, QueriesServed: b.queriesServed}
	if s.Flushes > 0 {
		s.MeanBatch = float64(s.QueriesServed) / float64(s.Flushes)
	}
	return s
}

// Close flushes any pending batch, rejects future Searches, and waits for
// any in-flight timer flush to finish, so cfg.Process is never entered
// after Close returns (callers tear down the processor right after).
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.cfg.Events.Info("batcher.drain", evlog.Int("pending", int64(len(batch))))
	}
	b.flush(batch)
	b.timerFlushes.Wait()
	b.cfg.Events.Info("batcher.closed",
		evlog.Int("flushes", b.flushes), evlog.Int("queries", b.queriesServed))
}
