package ivf

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/flatindex"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/vec"
)

func gaussianData(n, dim int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			m.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	return m
}

func buildIndex(t testing.TB, data *vec.Matrix, cfg Config) *Index {
	t.Helper()
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Train(data); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddBatch(0, data); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestDefaultNList(t *testing.T) {
	cases := []struct{ n, wantAtLeast, wantAtMost int }{
		{0, 1, 1},
		{1, 1, 1},
		{100, 40, 41},
		{10000, 400, 401},
	}
	for _, c := range cases {
		got := DefaultNList(c.n)
		if got < c.wantAtLeast || got > c.wantAtMost {
			t.Fatalf("DefaultNList(%d) = %d, want in [%d,%d]", c.n, got, c.wantAtLeast, c.wantAtMost)
		}
	}
	// nlist never exceeds n.
	if DefaultNList(5) > 5 {
		t.Fatal("DefaultNList must be <= n")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("Dim=0 should error")
	}
	if _, err := New(Config{Dim: 8, Quantizer: quant.NewFlat(4)}); err == nil {
		t.Fatal("quantizer dim mismatch should error")
	}
}

func TestLifecycleErrors(t *testing.T) {
	ix, err := New(Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(1, []float32{1, 2, 3, 4}); err == nil {
		t.Fatal("Add before Train should error")
	}
	if err := ix.Train(nil); err == nil {
		t.Fatal("Train(nil) should error")
	}
	if err := ix.Train(gaussianData(10, 3, 1)); err == nil {
		t.Fatal("Train with wrong dim should error")
	}
	if res := ix.Search([]float32{1, 2, 3, 4}, 5, 1); res != nil {
		t.Fatal("Search before Train should return nil")
	}
}

func TestFullProbeIsExact(t *testing.T) {
	// With nProbe == NList and a Flat quantizer, IVF must return exactly
	// the brute-force results.
	data := gaussianData(400, 8, 2)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 10, Seed: 1})
	ref := flatindex.New(8)
	ref.AddBatch(0, data)

	queries := gaussianData(20, 8, 3)
	for i := 0; i < queries.Len(); i++ {
		got := ix.Search(queries.Row(i), 5, ix.NList())
		want := ref.Search(queries.Row(i), 5)
		for j := range want {
			if got[j].ID != want[j].ID {
				t.Fatalf("query %d pos %d: ivf %d != flat %d", i, j, got[j].ID, want[j].ID)
			}
		}
	}
}

func TestRecallImprovesWithNProbe(t *testing.T) {
	data := gaussianData(2000, 16, 4)
	ix := buildIndex(t, data, Config{Dim: 16, NList: 40, Seed: 2})
	ref := flatindex.New(16)
	ref.AddBatch(0, data)

	queries := gaussianData(50, 16, 5)
	truth := ref.GroundTruth(queries, 10)

	recallAt := func(nProbe int) float64 {
		res := ix.SearchBatch(queries, 10, nProbe)
		ids := make([][]int64, len(res))
		for i, r := range res {
			for _, n := range r.Neighbors {
				ids[i] = append(ids[i], n.ID)
			}
		}
		return metrics.MeanRecall(ids, truth, 10)
	}
	r1 := recallAt(1)
	r8 := recallAt(8)
	r40 := recallAt(40)
	if !(r1 <= r8 && r8 <= r40) {
		t.Fatalf("recall not monotone in nProbe: %v %v %v", r1, r8, r40)
	}
	if r40 < 0.999 {
		t.Fatalf("full probe recall = %v, want ~1", r40)
	}
	if r1 >= 1 {
		t.Fatalf("nProbe=1 recall = %v; expected approximation loss", r1)
	}
}

func TestSearchStats(t *testing.T) {
	data := gaussianData(500, 8, 6)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 10, Seed: 3})
	_, stats := ix.SearchWithStats(data.Row(0), 5, 3)
	if stats.CellsProbed != 3 {
		t.Fatalf("CellsProbed = %d, want 3", stats.CellsProbed)
	}
	if stats.VectorsScanned <= 0 || stats.VectorsScanned > 500 {
		t.Fatalf("VectorsScanned = %d out of range", stats.VectorsScanned)
	}
	_, full := ix.SearchWithStats(data.Row(0), 5, 10)
	if full.VectorsScanned != 500 {
		t.Fatalf("full probe scanned %d, want 500", full.VectorsScanned)
	}
}

func TestNProbeClamping(t *testing.T) {
	data := gaussianData(100, 4, 7)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 5, Seed: 1})
	// nProbe <= 0 becomes 1; nProbe > NList becomes NList.
	_, s0 := ix.SearchWithStats(data.Row(0), 3, 0)
	if s0.CellsProbed != 1 {
		t.Fatalf("nProbe=0 probed %d cells", s0.CellsProbed)
	}
	_, sBig := ix.SearchWithStats(data.Row(0), 3, 99)
	if sBig.CellsProbed != 5 {
		t.Fatalf("nProbe=99 probed %d cells, want 5", sBig.CellsProbed)
	}
}

func TestListSizesSumToCount(t *testing.T) {
	data := gaussianData(300, 6, 8)
	ix := buildIndex(t, data, Config{Dim: 6, NList: 8, Seed: 4})
	total := 0
	for _, s := range ix.ListSizes() {
		total += s
	}
	if total != 300 || ix.Len() != 300 {
		t.Fatalf("list sizes sum %d, Len %d, want 300", total, ix.Len())
	}
}

func TestSQ8IndexSmallerThanFlat(t *testing.T) {
	data := gaussianData(500, 32, 9)
	flat := buildIndex(t, data, Config{Dim: 32, NList: 10, Seed: 1})
	sq := buildIndex(t, data, Config{Dim: 32, NList: 10, Seed: 1, Quantizer: quant.NewSQ(32, 8)})
	if sq.MemoryBytes() >= flat.MemoryBytes() {
		t.Fatalf("SQ8 %d bytes should be < Flat %d bytes", sq.MemoryBytes(), flat.MemoryBytes())
	}
	// SQ8 codes are 1/4 the size of fp32; overall ratio dominated by codes.
	ratio := float64(flat.MemoryBytes()) / float64(sq.MemoryBytes())
	if ratio < 2 {
		t.Fatalf("compression ratio %v too small", ratio)
	}
}

func TestSQ8RecallCloseToFlat(t *testing.T) {
	data := gaussianData(1500, 16, 10)
	flat := buildIndex(t, data, Config{Dim: 16, NList: 20, Seed: 5})
	sq := buildIndex(t, data, Config{Dim: 16, NList: 20, Seed: 5, Quantizer: quant.NewSQ(16, 8)})
	ref := flatindex.New(16)
	ref.AddBatch(0, data)
	queries := gaussianData(40, 16, 11)
	truth := ref.GroundTruth(queries, 10)

	recallOf := func(ix *Index) float64 {
		res := ix.SearchBatch(queries, 10, 20)
		ids := make([][]int64, len(res))
		for i, r := range res {
			for _, n := range r.Neighbors {
				ids[i] = append(ids[i], n.ID)
			}
		}
		return metrics.MeanRecall(ids, truth, 10)
	}
	rFlat, rSQ := recallOf(flat), recallOf(sq)
	if rFlat-rSQ > 0.05 {
		t.Fatalf("SQ8 recall %v too far below Flat recall %v", rSQ, rFlat)
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	data := gaussianData(400, 8, 12)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 10, Seed: 6})
	queries := gaussianData(10, 8, 13)
	batch := ix.SearchBatch(queries, 5, 4)
	for i := 0; i < queries.Len(); i++ {
		single := ix.Search(queries.Row(i), 5, 4)
		if len(single) != len(batch[i].Neighbors) {
			t.Fatalf("query %d: lengths differ", i)
		}
		for j := range single {
			if single[j].ID != batch[i].Neighbors[j].ID {
				t.Fatalf("query %d pos %d differs", i, j)
			}
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	data := gaussianData(300, 8, 14)
	orig := buildIndex(t, data, Config{Dim: 8, NList: 8, Seed: 7, Quantizer: quant.NewSQ(8, 8)})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() || restored.NList() != orig.NList() {
		t.Fatalf("restored shape mismatch: %d/%d vs %d/%d", restored.Len(), restored.NList(), orig.Len(), orig.NList())
	}
	q := data.Row(42)
	a := orig.Search(q, 5, 8)
	b := restored.Search(q, 5, 8)
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			t.Fatalf("restored search differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSerializeUntrainedFails(t *testing.T) {
	ix, _ := New(Config{Dim: 4})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err == nil {
		t.Fatal("serializing untrained index should error")
	}
}

func TestSerializeFlatQuantizer(t *testing.T) {
	data := gaussianData(100, 4, 15)
	orig := buildIndex(t, data, Config{Dim: 4, NList: 4, Seed: 8})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.QuantizerName() != "Flat" {
		t.Fatalf("restored quantizer = %s", restored.QuantizerName())
	}
}

func BenchmarkIVFSearch(b *testing.B) {
	data := gaussianData(20000, 64, 1)
	ix, err := New(Config{Dim: 64, NList: 100, Seed: 1, Quantizer: quant.NewSQ(64, 8)})
	if err != nil {
		b.Fatal(err)
	}
	if err := ix.Train(data); err != nil {
		b.Fatal(err)
	}
	if err := ix.AddBatch(0, data); err != nil {
		b.Fatal(err)
	}
	q := data.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(q, 10, 8)
	}
}

// TestSearchPhasedMatchesSearch checks the traced search variant: identical
// results and stats to SearchWithStats, with per-phase nanosecond attribution
// that is nonnegative and nonzero in aggregate.
func TestSearchPhasedMatchesSearch(t *testing.T) {
	data := gaussianData(600, 24, 9)
	ix := buildIndex(t, data, Config{Dim: 24, NList: 16})
	q := data.Row(7)

	plain, pStats := ix.SearchWithStats(q, 5, 4)
	phased, fStats, ph := ix.SearchPhased(q, 5, 4)
	if len(phased) != len(plain) {
		t.Fatalf("phased returned %d neighbors, plain %d", len(phased), len(plain))
	}
	for i := range plain {
		if phased[i] != plain[i] {
			t.Errorf("neighbor %d: phased %+v != plain %+v", i, phased[i], plain[i])
		}
	}
	if fStats != pStats {
		t.Errorf("stats diverge: phased %+v, plain %+v", fStats, pStats)
	}
	if ph.Select < 0 || ph.Scan < 0 || ph.Merge < 0 {
		t.Errorf("negative phase attribution: %+v", ph)
	}
	if ph.Select+ph.Scan+ph.Merge <= 0 {
		t.Errorf("phases must attribute some time: %+v", ph)
	}

	var agg PhaseNanos
	agg.Add(ph)
	agg.Add(PhaseNanos{Select: 1, Scan: 2, Merge: 3})
	if agg.Select != ph.Select+1 || agg.Scan != ph.Scan+2 || agg.Merge != ph.Merge+3 {
		t.Errorf("PhaseNanos.Add wrong: %+v", agg)
	}
}

// TestSearchPhasedClockGating proves the untraced path never reads the
// clock: with the seam rigged to panic, Search still works while
// SearchPhased trips it.
func TestSearchPhasedClockGating(t *testing.T) {
	data := gaussianData(300, 16, 10)
	ix := buildIndex(t, data, Config{Dim: 16, NList: 8})

	orig := now
	defer func() { now = orig }()
	calls := 0
	now = func() time.Time {
		calls++
		return time.Unix(int64(calls), 0)
	}

	if _, stats := ix.SearchWithStats(data.Row(0), 3, 2); stats.VectorsScanned == 0 {
		t.Fatal("plain search scanned nothing")
	}
	if calls != 0 {
		t.Fatalf("untraced search read the clock %d times; the hot path must stay clock-free", calls)
	}
	if _, _, ph := ix.SearchPhased(data.Row(0), 3, 2); ph.Select+ph.Scan+ph.Merge <= 0 {
		t.Error("phased search with a ticking fake clock must attribute time")
	}
	if calls == 0 {
		t.Error("phased search must read the clock")
	}
}
