package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRecallPerfect(t *testing.T) {
	truth := []int64{1, 2, 3, 4, 5}
	if r := RecallAtK(truth, truth, 5); r != 1 {
		t.Fatalf("perfect recall = %v", r)
	}
}

func TestRecallPartial(t *testing.T) {
	if r := RecallAtK([]int64{1, 2, 9, 8, 7}, []int64{1, 2, 3, 4, 5}, 5); r != 0.4 {
		t.Fatalf("partial recall = %v, want 0.4", r)
	}
}

func TestRecallEmptyTruth(t *testing.T) {
	if r := RecallAtK([]int64{1}, nil, 5); r != 0 {
		t.Fatalf("recall with empty truth = %v", r)
	}
}

func TestRecallTruncatesToK(t *testing.T) {
	// Only the first 2 of each list should count.
	r := RecallAtK([]int64{1, 9, 2}, []int64{1, 2, 3}, 2)
	if r != 0.5 {
		t.Fatalf("recall@2 = %v, want 0.5", r)
	}
}

func TestNDCGPerfect(t *testing.T) {
	truth := []int64{10, 20, 30}
	if n := NDCGAtK(truth, truth, 3); n != 1 {
		t.Fatalf("perfect NDCG = %v", n)
	}
}

func TestNDCGEmpty(t *testing.T) {
	if n := NDCGAtK(nil, nil, 5); n != 0 {
		t.Fatalf("empty NDCG = %v", n)
	}
	if n := NDCGAtK([]int64{1}, []int64{2}, 0); n != 0 {
		t.Fatalf("k=0 NDCG = %v", n)
	}
}

func TestNDCGOrderMatters(t *testing.T) {
	truth := []int64{1, 2, 3, 4, 5}
	reversed := []int64{5, 4, 3, 2, 1}
	good := NDCGAtK(truth, truth, 5)
	bad := NDCGAtK(reversed, truth, 5)
	if bad >= good {
		t.Fatalf("reversed ranking NDCG %v should be < perfect %v", bad, good)
	}
	if bad <= 0 {
		t.Fatalf("reversed ranking should still have positive NDCG, got %v", bad)
	}
}

func TestNDCGDisjointIsZero(t *testing.T) {
	if n := NDCGAtK([]int64{7, 8, 9}, []int64{1, 2, 3}, 3); n != 0 {
		t.Fatalf("disjoint NDCG = %v", n)
	}
}

// Property: NDCG is always within [0,1] for random permutations.
func TestNDCGBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		truth := make([]int64, n)
		for i := range truth {
			truth[i] = int64(i)
		}
		retrieved := append([]int64(nil), truth...)
		rng.Shuffle(len(retrieved), func(i, j int) {
			retrieved[i], retrieved[j] = retrieved[j], retrieved[i]
		})
		v := NDCGAtK(retrieved, truth, n)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping two adjacent retrieved items so a more relevant one
// moves earlier never decreases NDCG.
func TestNDCGMonotoneSwap(t *testing.T) {
	truth := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	retrieved := []int64{3, 0, 5, 1, 7, 2, 6, 4}
	base := NDCGAtK(retrieved, truth, 8)
	// Move item 0 (relevance high) to the front.
	swapped := append([]int64(nil), retrieved...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if NDCGAtK(swapped, truth, 8) <= base {
		t.Fatal("promoting a more relevant item should raise NDCG")
	}
}

func TestMeanNDCGAndRecall(t *testing.T) {
	retrieved := [][]int64{{1, 2}, {9, 8}}
	truth := [][]int64{{1, 2}, {1, 2}}
	if m := MeanNDCG(retrieved, truth, 2); m != 0.5 {
		t.Fatalf("MeanNDCG = %v, want 0.5", m)
	}
	if m := MeanRecall(retrieved, truth, 2); m != 0.5 {
		t.Fatalf("MeanRecall = %v, want 0.5", m)
	}
}

func TestMeanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanNDCG([][]int64{{1}}, nil, 1)
}

func TestSummarize(t *testing.T) {
	lats := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	s := Summarize(lats)
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 2500*time.Microsecond {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 != 2*time.Millisecond {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.Max != 4*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	lats := []time.Duration{3, 1, 2}
	Summarize(lats)
	if lats[0] != 3 || lats[1] != 1 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQPS(t *testing.T) {
	if q := QPS(100, time.Second); q != 100 {
		t.Fatalf("QPS = %v", q)
	}
	if q := QPS(100, 0); q != 0 {
		t.Fatalf("QPS with zero elapsed = %v", q)
	}
}

func TestEnergyLedger(t *testing.T) {
	var e Energy
	e.AddJoules("retrieve", 10)
	e.AddPower("decode", 300, 2*time.Second)
	if e.Stage("retrieve") != 10 {
		t.Fatalf("retrieve = %v", e.Stage("retrieve"))
	}
	if e.Stage("decode") != 600 {
		t.Fatalf("decode = %v", e.Stage("decode"))
	}
	if e.Total() != 610 {
		t.Fatalf("total = %v", e.Total())
	}
	stages := e.Stages()
	if len(stages) != 2 || stages[0] != "decode" {
		t.Fatalf("stages = %v", stages)
	}
}

func TestEnergyMerge(t *testing.T) {
	var a, b Energy
	a.AddJoules("x", 1)
	b.AddJoules("x", 2)
	b.AddJoules("y", 3)
	a.Merge(&b)
	if a.Stage("x") != 3 || a.Stage("y") != 3 {
		t.Fatalf("merge wrong: %s", a.String())
	}
}

func TestMRRAtK(t *testing.T) {
	truth := []int64{1, 2, 3}
	if m := MRRAtK([]int64{1, 9, 9}, truth, 3); m != 1 {
		t.Fatalf("rank-1 MRR = %v", m)
	}
	if m := MRRAtK([]int64{9, 2, 9}, truth, 3); m != 0.5 {
		t.Fatalf("rank-2 MRR = %v", m)
	}
	if m := MRRAtK([]int64{9, 8, 7}, truth, 3); m != 0 {
		t.Fatalf("miss MRR = %v", m)
	}
	// Hit beyond k does not count.
	if m := MRRAtK([]int64{9, 8, 1}, truth, 2); m != 0 {
		t.Fatalf("beyond-k MRR = %v", m)
	}
	if MRRAtK([]int64{1}, nil, 3) != 0 || MRRAtK([]int64{1}, truth, 0) != 0 {
		t.Fatal("degenerate MRR should be 0")
	}
}

func TestPrecisionAtK(t *testing.T) {
	truth := []int64{1, 2, 3}
	if p := PrecisionAtK([]int64{1, 2, 9, 8}, truth, 4); p != 0.5 {
		t.Fatalf("precision = %v, want 0.5", p)
	}
	// Short result lists are penalized (divisor stays k).
	if p := PrecisionAtK([]int64{1}, truth, 4); p != 0.25 {
		t.Fatalf("short-list precision = %v, want 0.25", p)
	}
	if PrecisionAtK(nil, truth, 0) != 0 {
		t.Fatal("k=0 precision should be 0")
	}
}

// Property: precision*k <= recall*|truth| identity sanity on random lists.
func TestPrecisionRecallConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10) + 1
		truth := make([]int64, rng.Intn(10)+1)
		for i := range truth {
			truth[i] = int64(rng.Intn(20))
		}
		retrieved := make([]int64, rng.Intn(15))
		for i := range retrieved {
			retrieved[i] = int64(rng.Intn(20))
		}
		p := PrecisionAtK(retrieved, truth, k)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
