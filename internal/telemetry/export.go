package telemetry

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// This file is the federation surface of the registry: a structured,
// gob-friendly export of every family (FamilySnapshot), a merge that folds
// many nodes' exports into one cluster view, and the rendering/flattening
// helpers the coordinator needs to serve the merged view. Snapshot()
// (registry.go) flattens to strings for human tables; Export() keeps the
// structure — kinds, bucket layouts, raw bucket counts — that merging needs.

// FamilySnapshot is one metric family exported for federation. The struct is
// wire-stable: it crosses the distsearch gob protocol inside Response, so it
// is locked by wire.lock and may only evolve append-only.
type FamilySnapshot struct {
	Name string
	Help string
	Kind Kind
	// Buckets is the histogram bucket upper-bound layout; nil for counters
	// and gauges.
	Buckets []float64
	Series  []SeriesSnapshot
}

// SeriesSnapshot is one labeled series within an exported family. Counter
// and gauge series carry Value; histogram series carry Count, Sum, and the
// per-bucket (non-cumulative) BucketCounts, len(family.Buckets)+1 with the
// +Inf overflow bucket last.
type SeriesSnapshot struct {
	// Labels is the canonical sorted label block (`k1="v1",k2="v2"`), ""
	// when unlabeled.
	Labels       string
	Value        float64
	Count        int64
	Sum          float64
	BucketCounts []int64
}

// exportCounts snapshots a histogram's buckets. Buckets are read without a
// barrier against concurrent Observes, so the per-bucket total can trail
// count by in-flight observations — the same mid-scrape skew WritePrometheus
// tolerates.
func (h *Histogram) exportCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Export snapshots every family in a structured, mergeable form. Families
// and series are sorted (by name, then label block), so two exports of the
// same registry state are deep-equal. Nil receivers export nil.
func (r *Registry) Export() []FamilySnapshot {
	if r == nil {
		return nil
	}
	r.runCollectors()
	fams := r.sortedFamilies()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		if f.kind == KindHistogram {
			fs.Buckets = append([]float64(nil), f.buckets...)
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ss := SeriesSnapshot{Labels: k}
			switch s := f.series[k].(type) {
			case *Counter:
				ss.Value = float64(s.Value())
			case *Gauge:
				ss.Value = s.Value()
			case *Histogram:
				ss.Count = s.Count()
				ss.Sum = s.Sum()
				ss.BucketCounts = s.exportCounts()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// MergeFamilies folds any number of exports (one per node) into a single
// cluster view. Matching is by family name and series label block. Counters
// and gauges sum — the right cluster semantics for totals and for additive
// gauges like queue depth or in-flight requests (for non-additive gauges,
// consult the per-node breakdown instead). Histograms merge bucket-wise:
// because every input bucket count is an exact tally of observations at or
// below that bound, the merged histogram is exactly the histogram the pooled
// raw observations would have produced, so a quantile estimated from the
// merged buckets lies within the bucket that contains the true pooled-sample
// quantile — the absolute error is bounded by that bucket's width (see
// BucketQuantile). Inputs with mismatched bucket layouts (only possible
// across incompatible binary versions) degrade: count and sum still
// accumulate, bucket counts keep the first-seen layout and the extra input's
// buckets are dropped, so quantiles reflect only layout-compatible nodes.
// The result is sorted by family name, series by label block.
func MergeFamilies(exports ...[]FamilySnapshot) []FamilySnapshot {
	type seriesAcc struct {
		s SeriesSnapshot
	}
	type famAcc struct {
		fs     FamilySnapshot
		series map[string]*seriesAcc
	}
	fams := make(map[string]*famAcc)
	for _, export := range exports {
		for _, fs := range export {
			fa := fams[fs.Name]
			if fa == nil {
				fa = &famAcc{
					fs: FamilySnapshot{
						Name:    fs.Name,
						Help:    fs.Help,
						Kind:    fs.Kind,
						Buckets: append([]float64(nil), fs.Buckets...),
					},
					series: make(map[string]*seriesAcc),
				}
				fams[fs.Name] = fa
			}
			sameLayout := floatsEqual(fa.fs.Buckets, fs.Buckets)
			for _, ss := range fs.Series {
				sa := fa.series[ss.Labels]
				if sa == nil {
					sa = &seriesAcc{s: SeriesSnapshot{Labels: ss.Labels}}
					if sameLayout {
						sa.s.BucketCounts = make([]int64, len(ss.BucketCounts))
					} else if len(fa.fs.Buckets) > 0 {
						sa.s.BucketCounts = make([]int64, len(fa.fs.Buckets)+1)
					}
					fa.series[ss.Labels] = sa
				}
				sa.s.Value += ss.Value
				sa.s.Count += ss.Count
				sa.s.Sum += ss.Sum
				if sameLayout && len(sa.s.BucketCounts) == len(ss.BucketCounts) {
					for i, c := range ss.BucketCounts {
						sa.s.BucketCounts[i] += c
					}
				}
			}
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		fa := fams[name]
		keys := make([]string, 0, len(fa.series))
		for k := range fa.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fa.fs.Series = append(fa.fs.Series, fa.series[k].s)
		}
		out = append(out, fa.fs)
	}
	return out
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BucketQuantile estimates the q-quantile from exported bucket counts
// (len(bounds)+1, overflow last), mirroring Histogram.Quantile: locate the
// bucket holding the ceil(q*count)-th observation, interpolate linearly
// inside it. The estimate is always bracketed by the bounds of the bucket
// that holds the true sample quantile; observations in the +Inf overflow
// bucket clamp to the largest finite bound. Returns 0 on empty or malformed
// input.
func BucketQuantile(bounds []float64, counts []int64, q float64) float64 {
	if len(bounds) == 0 || len(counts) != len(bounds)+1 {
		return 0
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i == len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			return lo + (hi-lo)*float64(rank-cum)/float64(c)
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}

// WriteFamiliesPrometheus renders an exported (typically merged) family set
// in the Prometheus text exposition format — the same shape
// Registry.WritePrometheus produces, minus exemplars, which are per-node
// debugging pointers that do not survive a merge.
func WriteFamiliesPrometheus(w io.Writer, fams []FamilySnapshot) error {
	for _, fs := range fams {
		if _, err := io.WriteString(w,
			"# HELP "+fs.Name+" "+fs.Help+"\n# TYPE "+fs.Name+" "+fs.Kind.String()+"\n"); err != nil {
			return err
		}
		for _, ss := range fs.Series {
			var err error
			switch fs.Kind {
			case KindCounter:
				err = seriesLine(w, fs.Name, ss.Labels, strconv.FormatInt(int64(ss.Value), 10))
			case KindHistogram:
				err = writeSnapshotHistogram(w, fs, ss)
			default:
				err = seriesLine(w, fs.Name, ss.Labels, formatFloat(ss.Value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSnapshotHistogram(w io.Writer, fs FamilySnapshot, ss SeriesSnapshot) error {
	var cum int64
	if len(ss.BucketCounts) == len(fs.Buckets)+1 {
		for i, bound := range fs.Buckets {
			cum += ss.BucketCounts[i]
			le := "le=\"" + formatFloat(bound) + "\""
			if ss.Labels != "" {
				le = ss.Labels + "," + le
			}
			if err := seriesLine(w, fs.Name+"_bucket", le, strconv.FormatInt(cum, 10)); err != nil {
				return err
			}
		}
		cum += ss.BucketCounts[len(fs.Buckets)]
		le := `le="+Inf"`
		if ss.Labels != "" {
			le = ss.Labels + "," + le
		}
		if err := seriesLine(w, fs.Name+"_bucket", le, strconv.FormatInt(cum, 10)); err != nil {
			return err
		}
	}
	if err := seriesLine(w, fs.Name+"_sum", ss.Labels, formatFloat(ss.Sum)); err != nil {
		return err
	}
	return seriesLine(w, fs.Name+"_count", ss.Labels, strconv.FormatInt(ss.Count, 10))
}

// FlattenFamilies turns an exported family set into the same key->value map
// Registry.Snapshot produces (`name{labels}` plus `:count/:sum/:p50/:p95/
// :p99` for histograms), so table renderers written against Snapshot keys —
// hermes-coordinator -stats/-watch — consume a merged cluster view
// unchanged.
func FlattenFamilies(fams []FamilySnapshot) map[string]float64 {
	out := make(map[string]float64)
	for _, fs := range fams {
		for _, ss := range fs.Series {
			base := fs.Name
			if ss.Labels != "" {
				base += "{" + ss.Labels + "}"
			}
			if fs.Kind == KindHistogram {
				out[base+":count"] = float64(ss.Count)
				out[base+":sum"] = ss.Sum
				out[base+":p50"] = BucketQuantile(fs.Buckets, ss.BucketCounts, 0.50)
				out[base+":p95"] = BucketQuantile(fs.Buckets, ss.BucketCounts, 0.95)
				out[base+":p99"] = BucketQuantile(fs.Buckets, ss.BucketCounts, 0.99)
			} else {
				out[base] = ss.Value
			}
		}
	}
	return out
}
