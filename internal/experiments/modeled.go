package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/encoder"
	"repro/internal/hwmodel"
	"repro/internal/llm"
	"repro/internal/multinode"
	"repro/internal/rag"
	"repro/internal/scaling"
	"repro/internal/vec"
)

func init() {
	register("fig5", Fig5Stride)
	register("fig6", Fig6LatencyBreakdown)
	register("fig7", Fig7Scaling)
	register("fig8", Fig8PriorWork)
	register("fig10", Fig10ClusterSizing)
	register("fig19", Fig19ClusterSize)
}

// datastoreSizes are the token counts the paper sweeps.
var datastoreSizes = []struct {
	label  string
	tokens int64
}{
	{"100M", 100e6},
	{"1B", 1e9},
	{"10B", 10e9},
	{"100B", 100e9},
	{"1T", 1e12},
}

func gemmaA6000() (*llm.Engine, error) {
	return llm.NewEngine(llm.Gemma2_9B, llm.A6000Ada, 1)
}

func monoRetriever(tokens int64, batch int) (rag.Retriever, error) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, tokens, 1)
	if err != nil {
		return nil, err
	}
	return rag.NewMonolithicRetriever(cl, batch)
}

func hermesRetriever(tokens int64, nodes, batch, deep int, policy multinode.DVFSPolicy) (rag.Retriever, error) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, tokens, nodes)
	if err != nil {
		return nil, err
	}
	return &rag.HermesRetriever{
		Cluster: cl,
		Config: multinode.HermesConfig{
			Batch:          batch,
			DeepLoads:      multinode.SpreadLoads(nodes, batch, deep),
			SampleFraction: 8.0 / 128.0,
			Policy:         policy,
		},
	}, nil
}

func baselinePipeline(tokens int64, batch, stride int) (rag.PipelineConfig, error) {
	eng, err := gemmaA6000()
	if err != nil {
		return rag.PipelineConfig{}, err
	}
	ret, err := monoRetriever(tokens, batch)
	if err != nil {
		return rag.PipelineConfig{}, err
	}
	return rag.PipelineConfig{
		Batch: batch, InputTokens: 512, OutputTokens: 256, Stride: stride,
		Engine: eng, Encoder: encoder.DefaultLatencyModel, Retriever: ret,
	}, nil
}

// Fig5Stride reproduces Figure 5: perplexity vs retrieval stride for the
// proxy model family, alongside modeled retrieval latency per output
// sequence at 10B and 100B tokens.
func Fig5Stride(sc Scale) ([]*Table, error) {
	ppl := &Table{
		ID:     "fig5",
		Title:  "Perplexity vs retrieval stride (paper Fig. 5 left)",
		Header: []string{"stride", "gpt2_762m", "gpt2_1.5b", "retro_578m_with_retrieval"},
		Notes: []string{
			"modeled: parameter power law + retrieval-benefit decay fit to the paper's anchors",
			"shape: the small retrieval model crosses below the 2x larger model at small strides",
		},
	}
	m := llm.DefaultPerplexityModel
	for _, stride := range []int{64, 32, 16, 8, 4, 2} {
		ppl.AddRow(stride,
			m.WithRetrieval(762e6, 0),
			m.WithRetrieval(1.5e9, 0),
			m.WithRetrieval(578e6, stride),
		)
	}

	lat := &Table{
		ID:     "fig5",
		Title:  "Retrieval latency vs stride (paper Fig. 5 right)",
		Header: []string{"stride", "strides_per_256_tokens", "latency_10B_s", "latency_100B_s"},
		Notes:  []string{"modeled: Gold 6448Y tier, batch 32; total retrieval time across all strides"},
	}
	for _, stride := range []int{64, 32, 16, 8, 4, 2} {
		strides := (256 + stride - 1) / stride
		l10 := hwmodel.XeonGold6448Y.RetrievalLatency(10e9, 32, 0).Seconds() * float64(strides)
		l100 := hwmodel.XeonGold6448Y.RetrievalLatency(100e9, 32, 0).Seconds() * float64(strides)
		lat.AddRow(stride, strides, l10, l100)
	}
	return []*Table{ppl, lat}, nil
}

// Fig6LatencyBreakdown reproduces Figure 6: TTFT and end-to-end latency
// with per-stage breakdown across datastore sizes.
func Fig6LatencyBreakdown(sc Scale) ([]*Table, error) {
	tab := &Table{
		ID:    "fig6",
		Title: "TTFT and E2E latency breakdown vs datastore size (paper Fig. 6)",
		Header: []string{"datastore", "encode_s", "retrieve_s", "prefill_s", "decode_s",
			"ttft_s", "e2e_s", "retrieval_frac_ttft"},
		Notes: []string{
			"modeled: batch 32, stride 16, 512 in / 256 out, Gemma2-9B on A6000 Ada",
			"paper anchors: retrieval ~61% of TTFT at 10B, ~94% at 100B; E2E ~minutes at 1T",
		},
	}
	for _, ds := range datastoreSizes {
		cfg, err := baselinePipeline(ds.tokens, 32, 16)
		if err != nil {
			return nil, err
		}
		rep, err := rag.Run(cfg)
		if err != nil {
			return nil, err
		}
		retrieveLat, _ := cfg.Retriever.RetrieveBatch()
		encodeLat := cfg.Encoder.BatchLatency(32)
		prefillLat := cfg.Engine.PrefillLatency(32, 512)
		decode := rep.E2E - encodeLat - time.Duration(rep.Strides)*(retrieveLat+prefillLat)
		frac := retrieveLat.Seconds() / rep.TTFT.Seconds()
		tab.AddRow(ds.label, encodeLat.Seconds(), retrieveLat.Seconds(), prefillLat.Seconds(),
			decode.Seconds(), rep.TTFT.Seconds(), rep.E2E.Seconds(), frac)
	}
	return []*Table{tab}, nil
}

// Fig7Scaling reproduces Figure 7: throughput, energy per query, and memory
// footprint vs datastore size. Memory comes from a measured calibration
// sweep of real IVF-SQ8 indexes (extrapolated beyond the sweep); throughput
// and energy from the platform model.
func Fig7Scaling(sc Scale) ([]*Table, error) {
	gen := func(n, dim int, seed int64) *vec.Matrix {
		rng := rand.New(rand.NewSource(seed))
		m := vec.NewMatrix(n, dim)
		for i := 0; i < n; i++ {
			for d := 0; d < dim; d++ {
				m.Row(i)[d] = float32(rng.NormFloat64())
			}
		}
		return m
	}
	model, err := scaling.Calibrate(scaling.SweepConfig{
		Dim:   sc.Dim,
		Sizes: []int{sc.Chunks / 4, sc.Chunks / 2, sc.Chunks},
		Seed:  sc.Seed,
	}, gen)
	if err != nil {
		return nil, err
	}
	// Scale measured bytes/token at the experiment dim up to the paper's
	// 768-dim SQ8 deployment.
	bytesPerToken768 := model.BytesPerToken() * 768 / float64(sc.Dim)

	tab := &Table{
		ID:     "fig7",
		Title:  "Throughput, energy, memory vs datastore size (paper Fig. 7)",
		Header: []string{"datastore", "qps", "joules_per_query", "memory_bytes_768d", "provenance"},
		Notes: []string{
			fmt.Sprintf("memory slope measured on real IVF-SQ8 indexes (R2=%.3f), scaled to 768 dims; ~%.1f TB at 1T tokens",
				model.MemoryFit.R2, bytesPerToken768*1e12/1e12),
			"throughput/energy modeled on the calibrated Gold 6448Y platform, batch 32",
		},
	}
	for _, ds := range datastoreSizes {
		cost := multinode.Monolithic(hwmodel.XeonGold6448Y, ds.tokens, 32)
		qps := cost.Throughput(32)
		jpq := cost.EnergyJ / 32
		mem := bytesPerToken768 * float64(ds.tokens)
		tab.AddRow(ds.label, qps, jpq, fmt.Sprintf("%.3e", mem), "modeled")
	}
	return []*Table{tab}, nil
}

// Fig8PriorWork reproduces Figure 8: the benefit of PipeRAG and RAGCache on
// small vs large datastores, and the speedup-vs-size curve showing both
// collapsing at scale.
func Fig8PriorWork(sc Scale) ([]*Table, error) {
	tab := &Table{
		ID:     "fig8",
		Title:  "Prior-work speedup vs datastore size (paper Fig. 8 right)",
		Header: []string{"datastore", "baseline_e2e_s", "piperag_speedup", "ragcache_speedup"},
		Notes: []string{
			"modeled: batch 32, stride 16; pipelining overlaps retrieval with inference,",
			"caching removes per-stride re-prefill; both collapse once retrieval dominates",
		},
	}
	for _, ds := range datastoreSizes {
		base, err := baselinePipeline(ds.tokens, 32, 16)
		if err != nil {
			return nil, err
		}
		rb, err := rag.Run(base)
		if err != nil {
			return nil, err
		}
		pipe := base
		pipe.Pipelined = true
		rp, err := rag.Run(pipe)
		if err != nil {
			return nil, err
		}
		cache := base
		cache.PrefixCache = true
		rc, err := rag.Run(cache)
		if err != nil {
			return nil, err
		}
		tab.AddRow(ds.label, rb.E2E.Seconds(),
			rb.E2E.Seconds()/rp.E2E.Seconds(),
			rb.E2E.Seconds()/rc.E2E.Seconds())
	}
	return []*Table{tab}, nil
}

// Fig10ClusterSizing reproduces Figure 10 (right): shard search latency vs
// shard size compared to the Gemma2-9B inference latency it must hide under,
// identifying the largest shard whose retrieval fits the pipeline gap.
func Fig10ClusterSizing(sc Scale) ([]*Table, error) {
	eng, err := gemmaA6000()
	if err != nil {
		return nil, err
	}
	// The pipeline gap retrieval must hide under: the full inference pass
	// (prefill plus the whole 256-token decode) at batch 32, matching the
	// paper's Fig. 10 Gemma2-9B inference-latency line.
	inference := eng.PrefillLatency(32, 512) + eng.DecodeLatency(32, 512, 256)

	tab := &Table{
		ID:     "fig10",
		Title:  "Shard search latency vs size against inference latency (paper Fig. 10)",
		Header: []string{"shard_tokens", "search_latency_s", "inference_latency_s", "fits_pipeline_gap"},
		Notes: []string{
			"modeled: Gold 6448Y, batch 32; the largest fitting shard size sets the shard count",
		},
	}
	sizes := []int64{10e6, 100e6, 1e9, 10e9, 100e9}
	for _, tok := range sizes {
		lat := hwmodel.XeonGold6448Y.RetrievalLatency(tok, 32, 0)
		tab.AddRow(fmt.Sprintf("%d", tok), lat.Seconds(), inference.Seconds(), lat <= inference)
	}
	return []*Table{tab}, nil
}

// Fig19ClusterSize reproduces Figure 19: the optimal shard size for hiding
// retrieval under inference across input/output-length serving scenarios.
func Fig19ClusterSize(sc Scale) ([]*Table, error) {
	eng, err := gemmaA6000()
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "fig19",
		Title:  "Optimal cluster size per serving scenario (paper Fig. 19)",
		Header: []string{"input_tokens", "output_tokens", "inference_window_s", "max_shard_tokens_B"},
		Notes: []string{
			"modeled: largest shard whose batch-32 retrieval hides under the full inference pass",
			"paper shape: longer inputs/outputs -> bigger windows -> bigger shards (34B at 32 in / 4 out, >100B at 2048 in)",
		},
	}
	cpu := hwmodel.XeonGold6448Y
	for _, in := range []int{32, 128, 256, 512, 1024, 2048} {
		for _, out := range []int{4, 32, 256} {
			window := eng.PrefillLatency(32, in) + eng.DecodeLatency(32, in, out)
			// Invert the latency model: tokens whose one-wave search
			// fits the window.
			perWave := window.Seconds() - cpu.OverheadSec
			maxTokens := 0.0
			if perWave > 0 {
				maxTokens = perWave / cpu.SecPerBTokQuery // billions
			}
			tab.AddRow(in, out, window.Seconds(), maxTokens)
		}
	}
	return []*Table{tab}, nil
}
