// Package poolretain is the fixture for the poolretain analyzer: uses of a
// pooled object, or an alias derived from it, after the matching Put.
package poolretain

import "sync"

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return new(buf) }}

// UseAfterPut reads the pooled object after handing it back.
func UseAfterPut() int {
	v := pool.Get().(*buf)
	pool.Put(v)
	return len(v.b) // want "use of pooled value v after v was returned to the pool"
}

// AliasAfterPut returns a sub-slice of the pooled backing array after the
// Put — the stale-alias class: the memory is concurrently rewritten by the
// next borrower.
func AliasAfterPut() []byte {
	v := pool.Get().(*buf)
	tail := v.b[4:]
	pool.Put(v)
	return tail // want "derived from pooled v"
}

// DeferredPut is the recommended bracket: the Put runs at return, after
// every use.
func DeferredPut() int {
	v := pool.Get().(*buf)
	defer pool.Put(v)
	return len(v.b)
}

// Rebind starts a new bracket: after v = pool.Get() again, uses are against
// the new object, not the returned one.
func Rebind() int {
	v := pool.Get().(*buf)
	pool.Put(v)
	v = pool.Get().(*buf)
	n := len(v.b)
	pool.Put(v)
	return n
}

// getBuf is the typed-facade pattern: a single-result accessor wrapping
// pool.Get. Calls to it seed roots exactly like a literal Get — without
// this, every real bracket in the module would be invisible.
func getBuf() *buf {
	//lint:ignore poolescape fixture: typed pool accessor, callers pair it with Put
	return pool.Get().(*buf)
}

// FacadeAfterPut draws through the accessor; tracking must still engage.
func FacadeAfterPut() int {
	v := getBuf()
	pool.Put(v)
	return cap(v.b) // want "use of pooled value v after v was returned to the pool"
}

// CopiedOut reads only data copied out before the Put — clean.
func CopiedOut() int {
	v := pool.Get().(*buf)
	n := len(v.b)
	pool.Put(v)
	return n
}

// Suppressed demonstrates the line-above //lint:ignore placement on a
// statement-level finding.
func Suppressed() int {
	v := pool.Get().(*buf)
	pool.Put(v)
	//lint:ignore poolretain fixture: the test rig owns the pool and nothing else Gets from it
	return len(v.b)
}
