// Package lockcopy is a lint fixture: sync primitives crossing function
// signatures by value.
package lockcopy

import "sync"

// Guarded carries a mutex directly.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Wrapper carries one transitively.
type Wrapper struct {
	G Guarded
}

// Clean carries none.
type Clean struct{ n int }

func badParam(g Guarded) int { // line 21: flagged (parameter g)
	return g.n
}

func badNested(w Wrapper) { // line 25: flagged (transitive through Wrapper.G)
	_ = w
}

func badReturn() Guarded { // line 29: flagged (result)
	return Guarded{}
}

func (g Guarded) badRecv() int { // line 33: flagged (value receiver)
	return g.n
}

var _ = func(g Guarded) { // line 37: flagged (func literal parameter)
	_ = g
}

func goodPtr(g *Guarded) int  { return g.n }
func goodClean(c Clean) Clean { return c }
func goodSlice(gs []Guarded)  { _ = gs }

func suppressed(g Guarded) { //lint:ignore lockcopy fixture-audited copy of a never-locked struct
	_ = g
}
