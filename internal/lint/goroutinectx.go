package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCtx audits `go func` literals — the coordinator/node fan-out and
// the batcher are exactly where a leaked or unsynchronized goroutine turns
// into a data race or an unbounded leak under load. Two rules:
//
//  1. The literal must show a visible completion mechanism in its body or
//     signature: a sync.WaitGroup, a channel operation (send, receive,
//     range, or close), or a context.Context. Fire-and-forget goroutines
//     with none of these cannot be drained on shutdown.
//  2. The literal must not capture an enclosing loop variable; pass it as a
//     parameter. (Safe under the go1.22 per-iteration semantics this module
//     targets, but a silent time bomb if the module version is ever
//     lowered, and harder to review either way.)
var GoroutineCtx = &Analyzer{
	Name:      "goroutinectx",
	Doc:       "go func literals need a visible completion mechanism and must not capture loop variables",
	Run:       runGoroutineCtx,
	TestFiles: true,
}

func runGoroutineCtx(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		loopVars, loopBodies := collectLoopVars(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, id := range capturedLoopVars(p, lit, loopVars, loopBodies) {
				p.Reportf(id.Pos(), "go func literal captures loop variable %s; pass it as a parameter", id.Name)
			}
			if !hasCompletionMechanism(p, lit) {
				p.Reportf(g.Pos(), "goroutine has no visible completion mechanism (sync.WaitGroup, channel, or context.Context); fire-and-forget goroutines cannot be drained on shutdown")
			}
			return true
		})
	}
}

// loopSpan is the source range of one loop body.
type loopSpan struct{ lo, hi token.Pos }

// collectLoopVars gathers the objects declared by for/range clauses in the
// file, together with the body span of the loop that declared them.
func collectLoopVars(p *Pass, f *ast.File) (map[types.Object]loopSpan, []loopSpan) {
	vars := make(map[types.Object]loopSpan)
	var bodies []loopSpan
	record := func(id *ast.Ident, body *ast.BlockStmt) {
		if id == nil || body == nil {
			return
		}
		if obj := p.Info.Defs[id]; obj != nil {
			vars[obj] = loopSpan{body.Pos(), body.End()}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			bodies = append(bodies, loopSpan{x.Body.Pos(), x.Body.End()})
			if id, ok := x.Key.(*ast.Ident); ok {
				record(id, x.Body)
			}
			if id, ok := x.Value.(*ast.Ident); ok {
				record(id, x.Body)
			}
		case *ast.ForStmt:
			bodies = append(bodies, loopSpan{x.Body.Pos(), x.Body.End()})
			if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, x.Body)
					}
				}
			}
		}
		return true
	})
	return vars, bodies
}

// capturedLoopVars returns identifier uses inside lit that resolve to a
// loop variable of a loop enclosing the literal.
func capturedLoopVars(p *Pass, lit *ast.FuncLit, vars map[types.Object]loopSpan, _ []loopSpan) []*ast.Ident {
	var out []*ast.Ident
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		span, isLoopVar := vars[obj]
		if !isLoopVar {
			return true
		}
		// The literal must sit inside the declaring loop's body for this
		// to be a capture (not, say, a later reuse of the same name).
		if lit.Pos() < span.lo || lit.End() > span.hi {
			return true
		}
		seen[obj] = true
		out = append(out, id)
		return true
	})
	return out
}

// hasCompletionMechanism reports whether the literal's signature or body
// shows evidence that the goroutine's lifetime is observable: a
// sync.WaitGroup reference, any channel operation, or a context.Context.
func hasCompletionMechanism(p *Pass, lit *ast.FuncLit) bool {
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			if t := p.TypeOf(field.Type); completionType(t) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil && completionType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// completionType reports whether t is a sync.WaitGroup (possibly behind a
// pointer), a context.Context, or a channel.
func completionType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch {
			case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup":
				return true
			case obj.Pkg().Path() == "context" && obj.Name() == "Context":
				return true
			}
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
