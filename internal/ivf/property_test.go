package ivf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/quant"
)

// Property suite over randomized corpora and configurations: these are the
// invariants every IVF search must satisfy regardless of data, quantizer, or
// probe depth.

func randomIndex(seed int64) (*Index, int, error) {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(400) + 50
	dim := rng.Intn(12) + 4
	nlist := rng.Intn(15) + 2
	var qz quant.Quantizer
	switch rng.Intn(3) {
	case 0:
		qz = quant.NewFlat(dim)
	case 1:
		qz = quant.NewSQ(dim, 8)
	default:
		qz = quant.NewSQ(dim, 4)
	}
	data := gaussianData(n, dim, seed+1)
	ix, err := New(Config{Dim: dim, NList: nlist, Quantizer: qz, Seed: seed, ByResidual: rng.Intn(2) == 1})
	if err != nil {
		return nil, 0, err
	}
	if err := ix.Train(data); err != nil {
		return nil, 0, err
	}
	if err := ix.AddBatch(0, data); err != nil {
		return nil, 0, err
	}
	return ix, n, nil
}

func TestSearchInvariants(t *testing.T) {
	f := func(seed int64) bool {
		ix, n, err := randomIndex(seed)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		rng := rand.New(rand.NewSource(seed + 2))
		q := make([]float32, ix.Dim())
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		k := rng.Intn(10) + 1
		nProbe := rng.Intn(ix.NList()) + 1
		res, stats := ix.SearchWithStats(q, k, nProbe)

		// 1. No more than k results; never more than stored vectors.
		if len(res) > k || len(res) > n {
			return false
		}
		// 2. Scores ascending (best first).
		for i := 1; i < len(res); i++ {
			if res[i].Score < res[i-1].Score {
				return false
			}
		}
		// 3. IDs unique and within range.
		seen := map[int64]bool{}
		for _, r := range res {
			if r.ID < 0 || r.ID >= int64(n) || seen[r.ID] {
				return false
			}
			seen[r.ID] = true
		}
		// 4. Stats consistent: probed exactly nProbe cells (clamped) and
		// scanned no more than the index holds.
		if stats.CellsProbed != nProbe || stats.VectorsScanned > n {
			return false
		}
		// 5. More probes never shrink the result set for k <= n.
		resFull, _ := ix.SearchWithStats(q, k, ix.NList())
		return len(resFull) >= len(res)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the best result of a full probe with a Flat quantizer is the true
// nearest stored vector.
func TestFullProbeFlatFindsNearest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 20
		dim := rng.Intn(8) + 2
		data := gaussianData(n, dim, seed+3)
		ix, err := New(Config{Dim: dim, NList: rng.Intn(8) + 2, Seed: seed})
		if err != nil || ix.Train(data) != nil || ix.AddBatch(0, data) != nil {
			return false
		}
		// Query one of the stored vectors: it must be its own best hit
		// with distance 0.
		probe := rng.Intn(n)
		res := ix.Search(data.Row(probe), 1, ix.NList())
		return len(res) == 1 && res[0].ID == int64(probe) && res[0].Score == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: removal is exact — after removing a random subset, no removed ID
// ever appears in any search, and all survivors remain findable by self-query
// under a full probe.
func TestRemoveSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 30
		data := gaussianData(n, 6, seed+4)
		ix, err := New(Config{Dim: 6, NList: 5, Seed: seed})
		if err != nil || ix.Train(data) != nil || ix.AddBatch(0, data) != nil {
			return false
		}
		removed := map[int64]bool{}
		for i := 0; i < n/3; i++ {
			id := int64(rng.Intn(n))
			if !removed[id] {
				if !ix.Remove(id) {
					return false
				}
				removed[id] = true
			}
		}
		if rng.Intn(2) == 0 {
			ix.Compact()
		}
		for i := 0; i < n; i++ {
			res := ix.Search(data.Row(i), 3, ix.NList())
			for _, r := range res {
				if removed[r.ID] {
					return false
				}
			}
			if !removed[int64(i)] {
				if len(res) == 0 || res[0].ID != int64(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
