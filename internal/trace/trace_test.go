package trace

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/hermes"
)

func fixtures(t testing.TB) (*hermes.Store, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{NumChunks: 1500, Dim: 16, NumTopics: 10, Seed: 3, ZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: 10})
	if err != nil {
		t.Fatal(err)
	}
	return st, c
}

func TestCollectShape(t *testing.T) {
	st, c := fixtures(t)
	qs := c.Queries(50, 5)
	tr := Collect(st, qs, hermes.DefaultParams())
	if tr.NumShards != 10 {
		t.Fatalf("NumShards = %d", tr.NumShards)
	}
	if len(tr.Entries) != 50 {
		t.Fatalf("entries = %d", len(tr.Entries))
	}
	for _, e := range tr.Entries {
		if len(e.DeepShards) != 3 {
			t.Fatalf("query %d deep shards = %d, want 3", e.QueryID, len(e.DeepShards))
		}
	}
}

func TestAccessCountsSum(t *testing.T) {
	st, c := fixtures(t)
	qs := c.Queries(40, 7)
	tr := Collect(st, qs, hermes.DefaultParams())
	counts := tr.AccessCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 40*3 {
		t.Fatalf("access total %d, want 120", total)
	}
}

// Figure 13's claim: with skewed query popularity, some shards are accessed
// far more than others (>= 2x in the paper).
func TestAccessFrequencyImbalance(t *testing.T) {
	st, c := fixtures(t)
	qs := c.Queries(300, 11)
	tr := Collect(st, qs, hermes.DefaultParams())
	ratio, _ := tr.AccessImbalance()
	if ratio < 2 {
		t.Fatalf("access imbalance %v, want >= 2 under Zipf query skew", ratio)
	}
}

func TestAccessImbalanceAllUnvisited(t *testing.T) {
	tr := &Trace{NumShards: 3}
	ratio, unvisited := tr.AccessImbalance()
	if ratio != 0 || unvisited != 3 {
		t.Fatalf("empty trace imbalance = %v/%d", ratio, unvisited)
	}
}

func TestBatchLoads(t *testing.T) {
	tr := &Trace{
		NumShards: 4,
		Entries: []Entry{
			{0, []int{0, 1}},
			{1, []int{0, 2}},
			{2, []int{3, 1}},
		},
	}
	loads := tr.BatchLoads(2)
	if len(loads) != 2 {
		t.Fatalf("got %d batches", len(loads))
	}
	want0 := []int{2, 1, 1, 0}
	for s, n := range want0 {
		if loads[0].ShardBatch[s] != n {
			t.Fatalf("batch 0 shard %d = %d, want %d", s, loads[0].ShardBatch[s], n)
		}
	}
	// Trailing partial batch.
	if loads[1].ShardBatch[3] != 1 || loads[1].ShardBatch[1] != 1 {
		t.Fatalf("partial batch wrong: %v", loads[1].ShardBatch)
	}
}

func TestBatchLoadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Trace{NumShards: 1}).BatchLoads(0)
}

func TestTopShardsOrdered(t *testing.T) {
	tr := &Trace{
		NumShards: 3,
		Entries: []Entry{
			{0, []int{1}}, {1, []int{1}}, {2, []int{0}},
		},
	}
	top := tr.TopShards()
	if top[0] != 1 {
		t.Fatalf("top shard = %d, want 1", top[0])
	}
	counts := tr.AccessCounts()
	for i := 1; i < len(top); i++ {
		if counts[top[i-1]] < counts[top[i]] {
			t.Fatal("TopShards not sorted descending")
		}
	}
}
