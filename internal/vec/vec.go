// Package vec provides the low-level float32 vector kernels used by every
// index and clustering component in the repository: dot products, squared
// Euclidean distance, norms, and blocked batch variants.
//
// All kernels operate on plain []float32 slices. Batched variants unroll the
// inner loop in blocks of four, which is the main portable optimization
// available without assembly; they are the hot path of IVF list scans and
// k-means assignment.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise, since a length mismatch is a programming
// error rather than a runtime condition.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// L2Squared returns the squared Euclidean distance between a and b.
func L2Squared(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: L2Squared length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean (L2) norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Normalize scales a in place to unit L2 norm. Zero vectors are left
// unchanged. It returns the original norm.
func Normalize(a []float32) float32 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return n
}

// Cosine returns the cosine similarity of a and b, or 0 if either vector has
// zero norm.
func Cosine(a, b []float32) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Add accumulates src into dst element-wise (dst += src).
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Add length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of a by s in place.
func Scale(a []float32, s float32) {
	for i := range a {
		a[i] *= s
	}
}

// Axpy computes dst += alpha * src.
func Axpy(dst []float32, alpha float32, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: Axpy length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// Copy returns a newly allocated copy of a.
func Copy(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Matrix is a dense row-major collection of fixed-dimension vectors backed by
// a single contiguous allocation, the layout used by index storage and
// k-means training sets.
type Matrix struct {
	Dim  int
	data []float32
}

// NewMatrix allocates an n×dim matrix of zeros.
func NewMatrix(n, dim int) *Matrix {
	if n < 0 || dim <= 0 {
		panic(fmt.Sprintf("vec: NewMatrix invalid shape %dx%d", n, dim))
	}
	return &Matrix{Dim: dim, data: make([]float32, n*dim)}
}

// MatrixFromRows builds a matrix copying the given equal-length rows.
func MatrixFromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		panic("vec: MatrixFromRows requires at least one row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// Len returns the number of rows.
func (m *Matrix) Len() int { return len(m.data) / m.Dim }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Data returns the backing slice (row-major).
func (m *Matrix) Data() []float32 { return m.data }

// AppendRow copies v onto the end of the matrix.
func (m *Matrix) AppendRow(v []float32) {
	if len(v) != m.Dim {
		panic(fmt.Sprintf("vec: AppendRow dim mismatch %d != %d", len(v), m.Dim))
	}
	m.data = append(m.data, v...)
}

// Bytes reports the memory footprint of the stored float32 data.
func (m *Matrix) Bytes() int64 { return int64(len(m.data)) * 4 }

// ArgMinL2 returns the row index of m closest (squared L2) to q and the
// corresponding distance. The matrix must be non-empty.
func (m *Matrix) ArgMinL2(q []float32) (int, float32) {
	if m.Len() == 0 {
		panic("vec: ArgMinL2 on empty matrix")
	}
	best, bestDist := 0, L2Squared(q, m.Row(0))
	for i := 1; i < m.Len(); i++ {
		if d := L2Squared(q, m.Row(i)); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}
