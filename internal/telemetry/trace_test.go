package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fakeClock steps the package `now` seam a fixed amount per read.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(5000, 0)
	calls := 0
	return func() time.Time {
		t := base.Add(time.Duration(calls) * step)
		calls++
		return t
	}
}

func TestTraceSpansRecordSeamedTime(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	now = fakeClock(time.Millisecond)

	tr := NewTrace()
	if tr.ID() == 0 {
		t.Fatal("trace ID must be non-zero")
	}
	// StartSpan and its closure each read the clock exactly once, so the
	// duration is one fake-clock step no matter what ran before.
	done := tr.StartSpan("sample_scatter")
	done()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Name != "sample_scatter" {
		t.Errorf("span name = %q", spans[0].Name)
	}
	if spans[0].Duration != time.Millisecond {
		t.Errorf("span duration = %v, want 1ms (one clock step)", spans[0].Duration)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTrace().ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

// TestTraceIDLayout pins the widened ID layout: 32 bits of per-process
// start-time entropy over a 32-bit sequence, so IDs only repeat after 2^32
// traces (not the 2^20 of the first implementation).
func TestTraceIDLayout(t *testing.T) {
	a, b := NewTrace().ID(), NewTrace().ID()
	if a>>32 != b>>32 {
		t.Errorf("high 32 bits must be the per-process base: %016x vs %016x", a, b)
	}
	if uint32(b) != uint32(a)+1 {
		t.Errorf("low 32 bits must be a sequence: %016x then %016x", a, b)
	}
}

func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 {
		t.Error("nil trace ID must be 0")
	}
	tr.StartSpan("x")() // must not panic
	if tr.Spans() != nil {
		t.Error("nil trace has no spans")
	}
	if got := tr.Breakdown(); !strings.Contains(got, "disabled") {
		t.Errorf("nil breakdown = %q", got)
	}
}

func TestBreakdownOrdersByStart(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	now = fakeClock(time.Millisecond)

	tr := NewTrace()
	endA := tr.StartSpan("sample_scatter")
	endA()
	endB := tr.StartSpan("rank")
	endB()
	endC := tr.StartSpan("deep_gather")
	endC()
	got := tr.Breakdown()
	iA := strings.Index(got, "sample_scatter=")
	iB := strings.Index(got, "rank=")
	iC := strings.Index(got, "deep_gather=")
	if iA < 0 || iB < 0 || iC < 0 || !(iA < iB && iB < iC) {
		t.Errorf("breakdown phases out of order: %q", got)
	}
	if !strings.Contains(got, "total=") {
		t.Errorf("breakdown missing total: %q", got)
	}
	durs := tr.Durations()
	if durs["rank"] != time.Millisecond {
		t.Errorf("rank duration = %v, want 1ms", durs["rank"])
	}
}
