package ivf

import "fmt"

// Mutation support. RAG's whole premise is a mutable, non-parametric
// datastore that evolves without retraining the LLM (paper Sections 1-2),
// so the index supports online removal alongside Add: Remove tombstones a
// list slot so scans skip it, and Compact reclaims the space once enough
// garbage accumulates. The coarse quantizer is intentionally left untouched
// — re-clustering is an offline rebuild, as in the paper's workflow.

// slotKey packs an inverted-list index and a position within it.
func slotKey(list, pos int) uint64 { return uint64(list)<<32 | uint64(uint32(pos)) }

// Remove tombstones the first live entry stored under id. It returns false
// if the id is not present (or already removed). The slot is skipped during
// scans until Compact reclaims it; removing and re-adding the same id is
// safe because tombstones are per slot, not per id.
func (ix *Index) Remove(id int64) bool {
	if !ix.trained {
		return false
	}
	for li := range ix.lists {
		for pos, got := range ix.lists[li].ids {
			if got != id {
				continue
			}
			if _, dead := ix.dead[slotKey(li, pos)]; dead {
				continue
			}
			if ix.dead == nil {
				ix.dead = make(map[uint64]struct{})
			}
			ix.dead[slotKey(li, pos)] = struct{}{}
			ix.count--
			return true
		}
	}
	return false
}

// Tombstones reports how many removed entries still occupy list space.
func (ix *Index) Tombstones() int { return len(ix.dead) }

// Compact rewrites every inverted list without tombstoned slots, reclaiming
// their memory. It must not run concurrently with searches.
func (ix *Index) Compact() {
	if len(ix.dead) == 0 {
		return
	}
	cs := ix.cfg.Quantizer.CodeSize()
	for li := range ix.lists {
		l := &ix.lists[li]
		keepIDs := l.ids[:0]
		keepCodes := l.codes[:0]
		for pos, id := range l.ids {
			if _, dead := ix.dead[slotKey(li, pos)]; dead {
				continue
			}
			keepIDs = append(keepIDs, id)
			keepCodes = append(keepCodes, l.codes[pos*cs:(pos+1)*cs]...)
		}
		l.ids = keepIDs
		l.codes = keepCodes
	}
	ix.dead = nil
}

// Update replaces the vector stored under id (remove + re-add under the
// current coarse quantizer). It errors if the id is absent.
func (ix *Index) Update(id int64, v []float32) error {
	if !ix.Remove(id) {
		return fmt.Errorf("ivf: Update of unknown id %d", id)
	}
	return ix.Add(id, v)
}
