package distsearch

import (
	"bytes"
	"encoding/gob"
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/evlog"
	"repro/internal/hermes"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// v3Response is the Response schema as of PR 4 — everything up to Spans,
// without Families — i.e. what a node running the previous release encodes
// and decodes.
type v3Response struct {
	Err                                       string
	ShardID, Size, Dim                        int
	Neighbors                                 []vec.Neighbor
	Batch                                     [][]vec.Neighbor
	Centroid                                  []float32
	OK                                        bool
	SampleServed, DeepServed, MutationsServed int64
	Tombstones                                int
	ServerNanos                               int64
	Telemetry                                 map[string]float64
	Scanned                                   int64
	Spans                                     []WireSpan
}

// TestResponseWireCompatV3V4 proves the Families append is gob-compatible
// in both directions: a v4 response decodes on a v3 peer (Families dropped),
// and a v3 response decodes on a v4 peer (Families nil).
func TestResponseWireCompatV3V4(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("hermes_test_requests_total", "r").Add(7)
	v4 := Response{
		ShardID:  3,
		Scanned:  42,
		Spans:    []WireSpan{{Name: "list_scan", Node: 3, DurNanos: 5}},
		Families: reg.Export(),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v4); err != nil {
		t.Fatal(err)
	}
	var oldSide v3Response
	if err := gob.NewDecoder(&buf).Decode(&oldSide); err != nil {
		t.Fatalf("v3 peer failed to decode a v4 response: %v", err)
	}
	if oldSide.ShardID != 3 || oldSide.Scanned != 42 || len(oldSide.Spans) != 1 {
		t.Errorf("v3 decode mangled fields: %+v", oldSide)
	}

	buf.Reset()
	old := v3Response{ShardID: 5, ServerNanos: 99, Scanned: 7}
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	var newSide Response
	if err := gob.NewDecoder(&buf).Decode(&newSide); err != nil {
		t.Fatalf("v4 peer failed to decode a v3 response: %v", err)
	}
	if newSide.ShardID != 5 || newSide.Scanned != 7 || newSide.Families != nil {
		t.Errorf("v4 decode of v3 response: %+v", newSide)
	}
}

// TestMixedVersionFederationDegrades runs a vN coordinator over one real
// (current) node and one v2-era stub node: queries must keep working, and
// ClusterMetrics must report the old shard as missing — local-only
// degradation, never an error.
func TestMixedVersionFederationDegrades(t *testing.T) {
	const dim = 16
	c, err := corpus.Generate(corpus.Spec{NumChunks: 400, Dim: dim, NumTopics: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodeReg := telemetry.NewRegistry()
	node, err := NewNode(0, st.Shards[0].Index, nil)
	if err != nil {
		t.Fatal(err)
	}
	node.SetTelemetry(nodeReg)
	if err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveV2Node(t, ln, 1, dim)

	co, err := DialOpts([]string{node.Addr(), ln.Addr().String()},
		DialOptions{Timeout: time.Second, Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// The old node still serves queries under the new coordinator.
	p := hermes.DefaultParams()
	p.DeepClusters = 2
	if _, err := co.Search(c.Queries(1, 3).Vectors.Row(0), p); err != nil {
		t.Fatalf("mixed-version query: %v", err)
	}

	view := co.ClusterMetrics()
	if len(view.Missing) != 1 || view.Missing[0] != 1 {
		t.Errorf("Missing = %v, want [1] (the v2 node)", view.Missing)
	}
	if len(view.Nodes) != 1 || view.Nodes[0].ShardID != 0 {
		t.Fatalf("contributing nodes = %+v, want shard 0 only", view.Nodes)
	}
	flat := telemetry.FlattenFamilies(view.Merged)
	if flat[`hermes_node_requests_total{op="info",shard="0"}`] == 0 {
		t.Errorf("merged view missing the real node's request counters: %v", flat)
	}

	// The degraded pull must not have poisoned the old node's connection:
	// another query still works.
	if _, err := co.Search(c.Queries(1, 4).Vectors.Row(0), p); err != nil {
		t.Fatalf("query after degraded federation pull: %v", err)
	}
}

// delayProxy forwards TCP bytes to a backend, injecting a per-chunk delay
// on the response direction when enabled — the "artificially slowed node"
// for deadline/SLO tests, with the real node logic untouched behind it.
type delayProxy struct {
	ln      net.Listener
	backend string
	delay   atomic.Int64 // nanoseconds; 0 = transparent
}

func newDelayProxy(t *testing.T, backend string) *delayProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &delayProxy{ln: ln, backend: backend}
	t.Cleanup(func() { ln.Close() })
	//lint:ignore goroutinectx accept loop exits when the cleanup ln.Close unblocks Accept
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			//lint:ignore goroutinectx per-conn forwarder exits when either side closes at test end
			//lint:ignore goroutineleak forwarder unblocks on conn close: cleanup closes the listener-held conns and the coordinator closes its side at test end
			go p.forward(conn)
		}
	}()
	return p
}

func (p *delayProxy) forward(client net.Conn) {
	defer client.Close()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer server.Close()
	//lint:ignore goroutinectx request pump exits when the client conn closes at test end
	go func() {
		buf := make([]byte, 32<<10)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				if _, werr := server.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := server.Read(buf)
		if n > 0 {
			if d := p.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if _, werr := client.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// TestClusterObservabilityEndToEnd is the acceptance e2e for the cluster
// observability plane, over real TCP nodes and real HTTP admin endpoints:
//
//  1. /metrics/cluster serves merged metrics from multiple real nodes;
//  2. /debug/slo flips an objective from healthy to BURNING when one node
//     is artificially slowed past the round-trip deadline;
//  3. /debug/events shows the resulting deadline-hit (and poisoning)
//     events.
func TestClusterObservabilityEndToEnd(t *testing.T) {
	const shards = 3
	c, err := corpus.Generate(corpus.Spec{NumChunks: 900, Dim: 16, NumTopics: shards, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	var proxy *delayProxy
	for i, shard := range st.Shards {
		node, err := NewNode(i, shard.Index, nil)
		if err != nil {
			t.Fatal(err)
		}
		node.SetTelemetry(telemetry.NewRegistry())
		if err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		if i == shards-1 {
			// The last shard sits behind the delay proxy — the node we
			// will slow down mid-test.
			proxy = newDelayProxy(t, node.Addr())
			addrs = append(addrs, proxy.ln.Addr().String())
		} else {
			addrs = append(addrs, node.Addr())
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	coordReg := telemetry.NewRegistry()
	ev := evlog.New(evlog.Config{Capacity: 256})
	co, err := DialOpts(addrs, DialOptions{
		Timeout:          2 * time.Second,
		RoundTripTimeout: 150 * time.Millisecond,
		Telemetry:        coordReg,
		Lenient:          true,
		Events:           ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	// SLO: 90% of sample scatters under 50ms. Windows are sized so the
	// whole test fits inside the fast window — the healthy and slowed
	// phases land in the same window and the burn rate is driven purely by
	// the good/bad mix, not wall-clock stepping.
	engine := slo.NewEngineWindows(slo.WindowConfig{
		Fast: time.Hour, FastSlot: time.Minute,
		Slow: 2 * time.Hour, SlowSlot: time.Minute,
	})
	obj := slo.Objective{Name: "scatter", Kind: slo.KindLatency, Target: 0.9, Threshold: 50 * time.Millisecond}
	if err := engine.AddObjective(obj, slo.LatencySource(co.m.phaseSample, obj.Threshold)); err != nil {
		t.Fatal(err)
	}
	engine.Tick() // prime

	mux := telemetry.NewAdminMux(coordReg)
	mux.HandleFunc("/metrics/cluster", co.ServeClusterMetrics)
	mux.HandleFunc("/debug/slo", engine.ServeSLO)
	mux.HandleFunc("/debug/events", ev.ServeEvents)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Phase 1 — healthy traffic.
	p := hermes.DefaultParams()
	qs := c.Queries(4, 11)
	for i := 0; i < 8; i++ {
		if _, err := co.Search(qs.Vectors.Row(i%4), p); err != nil {
			t.Fatalf("healthy query %d: %v", i, err)
		}
	}

	// /metrics/cluster merges all three real nodes plus the coordinator.
	code, page := scrape(t, srv.URL+"/metrics/cluster")
	if code != 200 {
		t.Fatalf("/metrics/cluster status %d", code)
	}
	if !strings.Contains(page, "# cluster view: coordinator + 3 node(s)") {
		t.Errorf("/metrics/cluster header wrong:\n%.300s", page)
	}
	if sum, n := sumSeries(t, page, "hermes_node_requests_total"); n == 0 || sum == 0 {
		t.Errorf("/metrics/cluster missing merged node request counters (n=%d sum=%v)", n, sum)
	}
	if _, n := sumSeries(t, page, "hermes_coordinator_queries_total"); n == 0 {
		t.Error("/metrics/cluster missing coordinator-side families")
	}
	// Per-node breakdown: one shard's unmerged view.
	code, nodePage := scrape(t, srv.URL+"/metrics/cluster?node=0")
	if code != 200 || !strings.Contains(nodePage, "# node view: shard 0") {
		t.Errorf("per-node breakdown (status %d):\n%.200s", code, nodePage)
	}

	// /debug/slo: healthy.
	_, sloPage := scrape(t, srv.URL+"/debug/slo")
	if !strings.Contains(sloPage, "scatter") || !strings.Contains(sloPage, "healthy") ||
		strings.Contains(sloPage, "BURNING") {
		t.Errorf("pre-slowdown /debug/slo:\n%s", sloPage)
	}

	// Phase 2 — slow the proxied node past the 150ms round-trip deadline.
	proxy.delay.Store(int64(400 * time.Millisecond))
	for i := 0; i < 10; i++ {
		// Lenient mode: queries survive on the healthy shards while the
		// slowed node eats deadline hits.
		if _, err := co.Search(qs.Vectors.Row(i%4), p); err != nil {
			t.Fatalf("slowed-phase query %d: %v", i, err)
		}
	}
	if co.m.deadlineHits.Value() == 0 {
		t.Fatal("slowed node produced no deadline hits; the SLO flip would be vacuous")
	}

	// /debug/slo: burning. 10 of 18 scatters blew the 50ms threshold
	// against a 10% budget.
	_, sloPage = scrape(t, srv.URL+"/debug/slo")
	if !strings.Contains(sloPage, "BURNING") {
		t.Errorf("post-slowdown /debug/slo did not flip to BURNING:\n%s", sloPage)
	}

	// /debug/events: the deadline hits and poisonings are on the record.
	_, evPage := scrape(t, srv.URL+"/debug/events")
	for _, want := range []string{"deadline.hit", "conn.poisoned", "node.dial"} {
		if !strings.Contains(evPage, want) {
			t.Errorf("/debug/events missing %q:\n%s", want, evPage)
		}
	}
}
