package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close body: %v", err)
		}
	}()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_test_requests_total", "requests").Add(9)
	srv, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close admin server: %v", err)
		}
	}()

	code, body := adminGet(t, srv.Addr(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = adminGet(t, srv.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "admin_test_requests_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE admin_test_requests_total counter") {
		t.Errorf("/metrics missing TYPE line:\n%s", body)
	}

	code, body = adminGet(t, srv.Addr(), "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}

	code, _ = adminGet(t, srv.Addr(), "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
}

// TestAdminScrapeSeesLiveCollector proves the /metrics endpoint pulls
// collector-backed stats at scrape time, not registration time.
func TestAdminScrapeSeesLiveCollector(t *testing.T) {
	reg := NewRegistry()
	live := 0
	reg.RegisterCollector(func(r *Registry) {
		live += 10
		r.Gauge("admin_live_gauge", "scrape-time value").Set(float64(live))
	})
	srv, err := ServeAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close admin server: %v", err)
		}
	}()
	_, body := adminGet(t, srv.Addr(), "/metrics")
	if !strings.Contains(body, "admin_live_gauge 10") {
		t.Errorf("first scrape:\n%s", body)
	}
	_, body = adminGet(t, srv.Addr(), "/metrics")
	if !strings.Contains(body, "admin_live_gauge 20") {
		t.Errorf("second scrape:\n%s", body)
	}
}
