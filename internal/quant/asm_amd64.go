//go:build amd64

package quant

// sq8UseAsm and pqUseAsm gate the assembly scan kernels. Both kernels use
// SSE2 only, which is part of the amd64 baseline, so no runtime feature
// detection is needed.
const (
	sq8UseAsm = true
	pqUseAsm  = true
)

// pqScanAsm evaluates n contiguous ADC codes of len(tables) subquantizer
// bytes each against the per-query gather tables, writing distances to
// out[:n]. Preconditions (enforced by the caller): len(tables) > 0 and a
// multiple of 4, len(codes) >= n*len(tables), len(out) >= n. Codes are
// processed in pairs with eight scalar accumulator chains to hide ADDSS
// latency behind the L1 table gathers. Implemented in pq_amd64.s.
//
//go:noescape
func pqScanAsm(codes []byte, tables [][256]float32, n int, out []float32)

// sq8DotAsm computes sum_d (qm[d] - float32(code[d])*scale[d])^2 over
// d in [0, len(qm)). Preconditions (enforced by the caller): len(qm) is a
// multiple of 4, len(code) >= len(qm), len(scale) >= len(qm). Accumulation
// uses eight SIMD lanes, so results match the scalar path only within the
// documented reassociation tolerance. Implemented in sq8_amd64.s.
//
//go:noescape
func sq8DotAsm(code []byte, qm, scale []float32) float32
