#!/usr/bin/env sh
# The hermes-lint CI gate (called from scripts/verify.sh).
#
# lint-report.json is a COMMITTED artifact: the accepted lint state of the
# tree. The gate fails only on findings absent from it (-diff), so a new
# analyzer can land with known, annotated findings and tighten over time
# instead of blocking on a big-bang cleanup. The first run below also
# refreshes the artifact in place — current findings replace the old
# snapshot, so fixed entries disappear and accepted ones keep their current
# positions; `git diff lint-report.json` then shows exactly how the lint
# state moved, and committing the refreshed file is part of the change.
#
# Second run: the same diff gate over in-package _test.go files
# (TestFiles-capable checks only; nothing is written).
#
# Third run: archive the cross-package fact lattices and lock-order graph
# (lint-facts.json, gitignored) next to the report, so a CI failure can be
# diagnosed from artifacts alone.
set -eux

cd "$(dirname "$0")/.."

go run ./cmd/hermes-lint -json -diff lint-report.json ./... > lint-report.json.tmp
mv lint-report.json.tmp lint-report.json
go run ./cmd/hermes-lint -diff lint-report.json -include-tests ./...
go run ./cmd/hermes-lint -facts -json ./... > lint-facts.json
