// Package metricname is a lint fixture: metric registrations against the
// naming convention, on a local stand-in for telemetry.Registry (the
// analyzer keys on the receiver type name and constructor-method names).
package metricname

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter       { return nil }
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge           { return nil }
func (r *Registry) Histogram(name, help string, b []float64, l ...string) *Histogram { return nil }

func good(reg *Registry) {
	reg.Counter("hermes_node_requests_total", "ok")
	reg.Gauge("hermes_coordinator_load_imbalance_ratio", "ok")
	reg.Histogram("hermes_node_scan_seconds", "ok", nil)
	reg.Counter("hermes_distsearch_bytes_sent_total", "ok")
	reg.Histogram("hermes_query_cost_scan_seconds", "ok", nil)
	reg.Histogram("hermes_query_cost_wire_bytes", "ok", nil)
	reg.Counter("hermes_coordinator_group_degrade_total", "ok")
}

func bad(reg *Registry) {
	reg.Counter("requests_total", "no prefix")                 // want "does not start with hermes_"
	reg.Counter("hermes_hits", "too short")                    // want "is too short"
	reg.Gauge("hermes_kvcache_hit_rate", "bad suffix")         // want "does not end in a unit/kind suffix"
	reg.Counter("hermes_node__requests_total", "double score") // want "empty token"
	reg.Gauge("hermes_node_Load_ratio", "upper case")          // want "with characters outside"
}

const dynamicPrefix = "hermes_"

func unckeckable(reg *Registry, suffix string) {
	// Non-constant names cannot be validated statically and are skipped.
	reg.Counter(dynamicPrefix+suffix, "runtime-built")
}

func suppressed(reg *Registry) {
	//lint:ignore metricname fixture demonstrates an audited unitless exception
	reg.Gauge("hermes_kvcache_entries", "resident entries (a plain count, not a flow)")
	//lint:ignore metricname attributed codes are a dimensionless count per query
	reg.Histogram("hermes_query_cost_codes", "per-query attributed codes", nil)
}

// notARegistry must not be confused with the telemetry registry: same
// method names on a different receiver type.
type other struct{}

func (o *other) Counter(name string) *Counter { return nil }

func unrelated(o *other) {
	o.Counter("whatever_name_goes")
}
