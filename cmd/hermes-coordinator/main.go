// Command hermes-coordinator drives a set of hermes-node shard servers: it
// scatters the sample phase to every node, ranks nodes by their sampled
// document, deep-searches the top clusters, and prints merged results with
// per-phase latencies — the online half of the distributed architecture.
//
// Usage:
//
//	hermes-coordinator -nodes 127.0.0.1:7001,127.0.0.1:7002 -index ./idx -queries 5
//	hermes-coordinator -nodes ... -index ./idx -queries 5 -all   # naive search-all baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/distsearch"
	"repro/internal/hermes"
	"repro/pkg/indexfile"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "", "comma-separated shard node addresses")
		dir       = flag.String("index", "hermes-index", "index directory (for the corpus spec)")
		queries   = flag.Int("queries", 5, "number of queries to run")
		qseed     = flag.Int64("qseed", 7, "query generation seed")
		k         = flag.Int("k", 5, "documents to retrieve")
		deep      = flag.Int("deep", 3, "clusters to deep-search")
		all       = flag.Bool("all", false, "search every node (naive baseline)")
		timeout   = flag.Duration("timeout", 5*time.Second, "dial timeout")
	)
	flag.Parse()

	if *nodesFlag == "" {
		fatal(fmt.Errorf("-nodes is required"))
	}
	addrs := strings.Split(*nodesFlag, ",")
	meta, err := indexfile.ReadMeta(*dir)
	if err != nil {
		fatal(err)
	}
	c, err := corpus.Generate(meta.Corpus)
	if err != nil {
		fatal(err)
	}
	store := corpus.NewChunkStore(c)

	co, err := distsearch.Dial(addrs, *timeout)
	if err != nil {
		fatal(err)
	}
	defer co.Close()
	fmt.Printf("connected to %d nodes, %d vectors total, dim %d\n\n", co.Nodes(), co.TotalSize(), co.Dim())

	params := hermes.DefaultParams()
	params.K = *k
	params.DeepClusters = *deep
	qs := c.Queries(*queries, *qseed)
	for i := 0; i < qs.Vectors.Len(); i++ {
		var res *distsearch.Result
		if *all {
			res, err = co.SearchAll(qs.Vectors.Row(i), params)
		} else {
			res, err = co.Search(qs.Vectors.Row(i), params)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query %d (topic %d): sample %v, deep %v on nodes %v\n",
			i, qs.Topics[i], res.SampleLatency, res.DeepLatency, res.DeepNodes)
		for rank, n := range res.Neighbors {
			txt, err := store.Get(n.ID)
			if err != nil {
				fatal(err)
			}
			if len(txt) > 60 {
				txt = txt[:60] + "..."
			}
			fmt.Printf("  %d. chunk %-6d d=%.4f %s\n", rank+1, n.ID, n.Score, txt)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-coordinator:", err)
	os.Exit(1)
}
