// Command hermes-coordinator drives a set of hermes-node shard servers: it
// scatters the sample phase to every node, ranks nodes by their sampled
// document, deep-searches the top clusters, and prints merged results with
// per-phase latencies — the online half of the distributed architecture.
//
// Usage:
//
//	hermes-coordinator -nodes 127.0.0.1:7001,127.0.0.1:7002 -index ./idx -queries 5
//	hermes-coordinator -nodes ... -index ./idx -queries 5 -all   # naive search-all baseline
//	hermes-coordinator -nodes ... -index ./idx -stats            # per-node serving table + federated cluster totals
//	hermes-coordinator -nodes ... -index ./idx -stats -watch 2s  # live load + modeled energy + SLO burn table
//	hermes-coordinator -nodes ... -index ./idx -trace -queries 3 # per-query cross-node waterfall
//
// With -admin the coordinator also serves the cluster observability plane:
// /metrics/cluster (federated metrics merged from every node, ?node=<shard>
// for one node's breakdown), /debug/slo (error-budget burn rates for the
// -slo objectives), and /debug/events (the structured event log ring).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/corpus"
	"repro/internal/distsearch"
	"repro/internal/evlog"
	"repro/internal/hermes"
	"repro/internal/hwmodel"
	"repro/internal/rerank"
	"repro/internal/slo"
	"repro/internal/telemetry"
	"repro/pkg/indexfile"
)

func main() {
	var (
		nodesFlag = flag.String("nodes", "", "comma-separated shard node addresses")
		dir       = flag.String("index", "hermes-index", "index directory (for the corpus spec)")
		queries   = flag.Int("queries", 5, "number of queries to run")
		qseed     = flag.Int64("qseed", 7, "query generation seed")
		k         = flag.Int("k", 5, "documents to retrieve")
		deep      = flag.Int("deep", 3, "clusters to deep-search")
		all       = flag.Bool("all", false, "search every node (naive baseline)")
		timeout   = flag.Duration("timeout", 5*time.Second, "dial timeout")
		rtTimeout = flag.Duration("rt-timeout", 0, "per-round-trip I/O deadline; 0 leaves round-trips unbounded")
		admin     = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8081)")
		stats     = flag.Bool("stats", false, "print the per-node serving table (live Fig. 13 view) and exit")
		trace     = flag.Bool("trace", false, "trace each query and print its cross-node span waterfall")
		cost      = flag.Bool("cost", false, "print each query's cost-ledger table (cells, exclusive/amortized codes, attributed scan time, wire bytes)")
		watch     = flag.Duration("watch", 0, "with -stats: poll the cluster at this interval, printing load shares and modeled DVFS energy until interrupted")
		platform  = flag.String("platform", "gold6448y", "CPU platform for the energy model (gold6448y|platinum8380|silver4316|neoverse, or a full hwmodel name)")
		slowMS    = flag.Int("slow-ms", 100, "flight-recorder pin threshold in milliseconds for /debug/queries (with -admin)")
		sloSpec   = flag.String("slo", "", `SLO objectives served at /debug/slo and exported as hermes_slo_* ("scatter=latency:50ms@0.99,avail=availability@0.999")`)
	)
	flag.Parse()

	if *nodesFlag == "" {
		fatal(fmt.Errorf("-nodes is required"))
	}
	addrs := strings.Split(*nodesFlag, ",")
	meta, err := indexfile.ReadMeta(*dir)
	if err != nil {
		fatal(err)
	}
	c, err := corpus.Generate(meta.Corpus)
	if err != nil {
		fatal(err)
	}
	store := corpus.NewChunkStore(c)
	tokensPerChunk := int64(corpus.DefaultTokensPerChunk)
	if meta.Corpus.TokensPerChunk > 0 {
		tokensPerChunk = int64(meta.Corpus.TokensPerChunk)
	}
	spec, err := resolvePlatform(*platform)
	if err != nil {
		fatal(err)
	}

	rec := telemetry.NewRecorder(256, time.Duration(*slowMS)*time.Millisecond)
	ev := evlog.New(evlog.Config{Capacity: 256})
	co, err := distsearch.DialOpts(addrs, distsearch.DialOptions{
		Timeout:          *timeout,
		RoundTripTimeout: *rtTimeout,
		Recorder:         rec,
		Events:           ev,
	})
	if err != nil {
		fatal(err)
	}
	defer co.Close()
	fmt.Printf("connected to %d nodes, %d vectors total, dim %d\n\n", co.Nodes(), co.TotalSize(), co.Dim())

	var engine *slo.Engine
	if *sloSpec != "" {
		objs, err := slo.ParseObjectives(*sloSpec)
		if err != nil {
			fatal(err)
		}
		if engine, err = co.NewSLOEngine(objs); err != nil {
			fatal(err)
		}
		telemetry.Default.RegisterCollector(engine.CollectInto())
		stopTicker := engine.StartTicker(10 * time.Second)
		defer stopTicker()
	}

	if *admin != "" {
		if err := co.EnableEnergyModel(spec, tokensPerChunk); err != nil {
			fatal(err)
		}
		mux := telemetry.NewAdminMuxOpts(telemetry.Default, rec)
		mux.HandleFunc("/metrics/cluster", co.ServeClusterMetrics)
		mux.HandleFunc("/debug/slo", engine.ServeSLO)
		mux.HandleFunc("/debug/events", ev.ServeEvents)
		srv, err := telemetry.ServeAdminMux(*admin, mux)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("admin endpoints on http://%s/metrics (cluster view at /metrics/cluster, flight recorder at /debug/queries, SLOs at /debug/slo, events at /debug/events)\n\n", srv.Addr())
	}
	if *stats {
		if *watch > 0 {
			watchStats(co, spec, tokensPerChunk, *watch, engine)
			return
		}
		printStats(co, spec)
		printClusterSummary(co)
		if engine != nil {
			engine.Tick()
			fmt.Println()
			slo.WriteBurnTable(os.Stdout, engine.Reports())
		}
		return
	}

	// -trace reranks the merged candidates against the raw corpus vectors so
	// the breakdown shows the full sample/rank/deep/rerank pipeline.
	var reranker *rerank.Reranker
	if *trace {
		reranker = rerank.NewFromMatrix(rerank.InnerProduct, c.Vectors)
	}

	params := hermes.DefaultParams()
	params.K = *k
	params.DeepClusters = *deep
	qs := c.Queries(*queries, *qseed)
	var costs []telemetry.QueryCost
	for i := 0; i < qs.Vectors.Len(); i++ {
		var res *distsearch.Result
		var tr *telemetry.Trace
		switch {
		case *all:
			res, err = co.SearchAll(qs.Vectors.Row(i), params)
		case *trace:
			tr = telemetry.NewTrace()
			res, err = co.SearchTraced(qs.Vectors.Row(i), params, tr)
			if err == nil {
				endRerank := tr.StartSpan("rerank")
				res.Neighbors = reranker.Rerank(qs.Vectors.Row(i), res.Neighbors)
				endRerank()
			}
		default:
			res, err = co.Search(qs.Vectors.Row(i), params)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query %d (topic %d): sample %v, deep %v on nodes %v\n",
			i, qs.Topics[i], res.SampleLatency, res.DeepLatency, res.DeepNodes)
		if *cost {
			costs = append(costs, res.Cost)
		}
		if tr != nil {
			fmt.Printf("  %s\n", tr.Breakdown())
			for _, line := range strings.Split(tr.Waterfall(), "\n") {
				fmt.Printf("  %s\n", line)
			}
		}
		for rank, n := range res.Neighbors {
			txt, err := store.Get(n.ID)
			if err != nil {
				fatal(err)
			}
			if len(txt) > 60 {
				txt = txt[:60] + "..."
			}
			fmt.Printf("  %d. chunk %-6d d=%.4f %s\n", rank+1, n.ID, n.Score, txt)
		}
		fmt.Println()
	}
	if *cost {
		printCostTable(costs)
	}
}

// printCostTable renders the -cost view: one ledger row per query plus exact
// column totals. The scan column carries attributed time only when the run
// was traced (-trace); untraced queries never read the scan clock.
func printCostTable(costs []telemetry.QueryCost) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "query\tcells\tshared\tcodes_excl\tcodes_amort\tcodes\tscan\twire\t")
	var total telemetry.QueryCost
	for i, c := range costs {
		total.Add(c)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%v\t%dB\t\n",
			i, c.Cells, c.SharedCells, c.CodesExclusive, c.CodesAmortized,
			c.Codes(), time.Duration(c.ScanNanos), c.WireBytes)
	}
	fmt.Fprintf(w, "total\t%d\t%d\t%d\t%d\t%d\t%v\t%dB\t\n",
		total.Cells, total.SharedCells, total.CodesExclusive, total.CodesAmortized,
		total.Codes(), time.Duration(total.ScanNanos), total.WireBytes)
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

// resolvePlatform maps short CLI aliases to hwmodel specs, falling back to
// the full platform-name lookup.
func resolvePlatform(name string) (hwmodel.CPUSpec, error) {
	switch strings.ToLower(name) {
	case "gold6448y", "gold":
		return hwmodel.XeonGold6448Y, nil
	case "platinum8380", "platinum":
		return hwmodel.XeonPlatinum8380, nil
	case "silver4316", "silver":
		return hwmodel.XeonSilver4316, nil
	case "neoverse", "neoversen1", "n1":
		return hwmodel.NeoverseN1, nil
	}
	return hwmodel.PlatformByName(name)
}

// printStats renders each node's serving counters, handling-time quantiles,
// its share of the cluster's deep-search load, and the static DVFS estimate
// for that share — the live per-node view of the paper's Fig. 13 access
// imbalance with Fig. 21's energy angle attached.
func printStats(co *distsearch.Coordinator, spec hwmodel.CPUSpec) {
	stats, err := co.Stats()
	if err != nil {
		fatal(err)
	}
	var totalDeep int64
	for _, ns := range stats {
		totalDeep += ns.DeepServed
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shard\tvectors\tquantizer\tsample\tdeep\tshare\tghz(model)\twatts(model)\tmutations\ttombstones\tsample_p95\tdeep_p95\tscan_p95\ttraced")
	for _, ns := range stats {
		sampleP95 := nodeSeconds(ns, "sample")
		deepP95 := nodeSeconds(ns, "deep")
		quantizer, scanP95 := nodeScanP95(ns)
		traced := ns.Telemetry[fmt.Sprintf(`hermes_node_traced_requests_total{shard="%d"}`, ns.ShardID)]
		share := 0.0
		if totalDeep > 0 {
			share = float64(ns.DeepServed) / float64(totalDeep)
		}
		ghz, watts := modelForShare(spec, share, len(stats))
		fmt.Fprintf(w, "%d\t%d\t%s\t%d\t%d\t%.1f%%\t%.2f\t%.0f\t%d\t%d\t%v\t%v\t%v\t%.0f\n",
			ns.ShardID, ns.Size, quantizer, ns.SampleServed, ns.DeepServed, 100*share, ghz, watts,
			ns.MutationsServed, ns.Tombstones, sampleP95, deepP95, scanP95, traced)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

// printClusterSummary renders the federated headline series from the
// /metrics/cluster merge: cluster-wide query/request/error totals plus which
// shards contributed, so -stats shows the same truth the scrape endpoint
// serves. Shards running a pre-federation release are listed, not fatal.
func printClusterSummary(co *distsearch.Coordinator) {
	view := co.ClusterMetrics()
	flat := telemetry.FlattenFamilies(view.Merged)
	var nodeReqs, nodeSecs float64
	for key, v := range flat {
		if strings.HasPrefix(key, "hermes_node_requests_total{") {
			nodeReqs += v
		}
		if strings.HasPrefix(key, "hermes_node_request_seconds{") && strings.HasSuffix(key, ":sum") {
			nodeSecs += v
		}
	}
	fmt.Printf("\ncluster (federated from %d node(s)): queries=%.0f node_requests=%.0f node_busy=%.3fs errors=%.0f deadline_hits=%.0f\n",
		len(view.Nodes),
		flat["hermes_coordinator_queries_total"],
		nodeReqs, nodeSecs,
		flat["hermes_distsearch_errors_total"],
		flat["hermes_distsearch_deadline_hits_total"])
	if len(view.Missing) > 0 {
		fmt.Printf("  shards not contributing metrics (old release or unreachable): %v\n", view.Missing)
	}
}

// modelForShare is the static one-shot DVFS estimate: a node carrying its
// fair share (1/n) of the deep load runs at base frequency; relative
// over/under-load scales it, clamped to the platform's DVFS range, and power
// follows the platform's f-V curve. The -watch loop replaces this with the
// real windowed model driven by observed load deltas.
func modelForShare(spec hwmodel.CPUSpec, share float64, n int) (ghz, watts float64) {
	rel := share * float64(n)
	ghz = spec.BaseGHz * rel
	if ghz < spec.MinGHz {
		ghz = spec.MinGHz
	}
	if ghz > spec.MaxGHz {
		ghz = spec.MaxGHz
	}
	if share == 0 {
		return spec.MinGHz, spec.IdlePower()
	}
	return ghz, spec.Power(ghz)
}

// watchStats polls the cluster until interrupted, feeding each node's
// observed deep-search load through the windowed DVFS energy model — real
// load deltas over real wall windows, so the joules column is the live
// Fig. 21 account.
func watchStats(co *distsearch.Coordinator, spec hwmodel.CPUSpec, tokensPerChunk int64, interval time.Duration, engine *slo.Engine) {
	model, err := hwmodel.NewEnergyModel(spec)
	if err != nil {
		fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	fmt.Printf("watching %d nodes every %v on %s (interrupt to stop)\n", co.Nodes(), interval, spec.Name)
	last := make(map[int]int64)
	lastAt := time.Now()
	for {
		select {
		case <-sig:
			fmt.Println("\ninterrupted")
			return
		case t := <-ticker.C:
			stats, err := co.Stats()
			if err != nil {
				fatal(err)
			}
			window := t.Sub(lastAt)
			lastAt = t
			var totalDelta int64
			deltas := make(map[int]int64, len(stats))
			for _, ns := range stats {
				d := ns.DeepServed - last[ns.ShardID]
				last[ns.ShardID] = ns.DeepServed
				deltas[ns.ShardID] = d
				totalDelta += d
			}
			w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintf(w, "%s  window=%v  deep=%d\n", t.Format("15:04:05"), window.Round(time.Millisecond), totalDelta)
			fmt.Fprintln(w, "shard\tdeep_total\tΔdeep\tshare\tghz\twatts\tjoules")
			for _, ns := range stats {
				d := deltas[ns.ShardID]
				share := 0.0
				if totalDelta > 0 {
					share = float64(d) / float64(totalDelta)
				}
				ne := model.Advance(ns.ShardID, int64(ns.Size)*tokensPerChunk, d, window)
				fmt.Fprintf(w, "%d\t%d\t%d\t%.1f%%\t%.2f\t%.0f\t%.1f\n",
					ns.ShardID, ns.DeepServed, d, 100*share, ne.GHz, ne.Watts, ne.Joules)
			}
			if err := w.Flush(); err != nil {
				fatal(err)
			}
			if engine != nil {
				engine.Tick()
				slo.WriteBurnTable(os.Stdout, engine.Reports())
			}
			fmt.Println()
		}
	}
}

// nodeSeconds extracts a node's p95 handling time for op from its telemetry
// snapshot; zero renders as 0s for nodes that have not served the op yet.
func nodeSeconds(ns distsearch.NodeStats, op string) time.Duration {
	key := fmt.Sprintf(`hermes_node_request_seconds{op="%s",shard="%d"}:p95`, op, ns.ShardID)
	return time.Duration(ns.Telemetry[key] * float64(time.Second))
}

// nodeScanP95 extracts the node's per-quantizer index-scan p95. The series is
// labeled with the quantizer kind, which the coordinator does not know ahead
// of time, so it matches the key by prefix and shard label and recovers the
// quantizer name from the label block.
func nodeScanP95(ns distsearch.NodeStats) (string, time.Duration) {
	const prefix = `hermes_node_scan_seconds{`
	shardLabel := fmt.Sprintf(`shard="%d"`, ns.ShardID)
	for key, v := range ns.Telemetry {
		if !strings.HasPrefix(key, prefix) || !strings.HasSuffix(key, ":p95") {
			continue
		}
		labels := strings.TrimSuffix(strings.TrimPrefix(key, prefix), "}:p95")
		if !strings.Contains(labels, shardLabel) {
			continue
		}
		quantizer := "?"
		if i := strings.Index(labels, `quantizer="`); i >= 0 {
			rest := labels[i+len(`quantizer="`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				quantizer = rest[:j]
			}
		}
		return quantizer, time.Duration(v * float64(time.Second))
	}
	return "?", 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-coordinator:", err)
	os.Exit(1)
}
