// Package escapeauditmissing declares a //hermes:hotpath function but
// commits no alloc.lock: the budget was never recorded.
package escapeauditmissing

//hermes:hotpath
func Hot(x int) int { // want "but no alloc.lock; run hermes-lint -update-alloclock"
	return x * 2
}
