package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Mutex class identity. The lock-order graph is keyed on (type, field) —
// every instance of Node.mu is one node, lockdep-class style — because
// ordering bugs are properties of the code's locking discipline, not of
// individual instances. The three resolvable shapes:
//
//	"pkgpath.Type.field"  — a sync.Mutex/RWMutex struct field, including
//	                        fields reached through embedded structs and
//	                        methods promoted from an embedded mutex
//	"pkgpath.varname"     — a package-level mutex variable
//	""                    — locals, anonymous structs: no stable class
//	                        identity, skipped by the graph
//
// Conflating instances means a self-edge (shard[i].mu held while taking
// shard[j].mu) is not evidence of an ordering violation; addEdge drops
// same-class edges for exactly that reason.

// mutexID resolves the selector of a <recv>.Lock/RLock call (as matched by
// lockOp) to the mutex's class identity, or "" when it has none.
func mutexID(info *types.Info, lockSel *ast.SelectorExpr) string {
	// Promoted method: n.Lock() where the receiver's type embeds the mutex.
	// The method selection's index path walks the embedded fields; all but
	// the final (method) index name the field chain.
	if ms := info.Selections[lockSel]; ms != nil && ms.Kind() == types.MethodVal && len(ms.Index()) > 1 {
		return fieldPathID(ms.Recv(), ms.Index()[:len(ms.Index())-1])
	}
	switch x := ast.Unparen(lockSel.X).(type) {
	case *ast.Ident:
		// mu.Lock() on a bare identifier: package-level vars only.
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		// pkg.Mu.Lock() on a qualified package-level var.
		if _, ok := pkgNameOf(info, x.X); ok {
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		// n.mu.Lock() (possibly chained / through embedded structs): the
		// field selection's owner type plus the field name.
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return fieldPathID(sel.Recv(), sel.Index())
		}
	}
	return ""
}

// fieldPathID walks a selection index path from recv, returning the
// identity "pkgpath.Owner.field" of the final field, where Owner is the
// named struct type that declares it.
func fieldPathID(recv types.Type, index []int) string {
	owner := namedOf(recv)
	for k, i := range index {
		if owner == nil {
			return ""
		}
		st, ok := owner.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return ""
		}
		f := st.Field(i)
		if k == len(index)-1 {
			return typeID(owner) + "." + f.Name()
		}
		owner = namedOf(f.Type())
	}
	return ""
}

// namedOf unwraps pointers and aliases to the *types.Named beneath, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

func typeID(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// shortMutexID trims the package path down to its base for display:
// "repro/internal/distsearch.Node.mu" -> "distsearch.Node.mu".
func shortMutexID(id string) string {
	if i := lastSlash(id); i >= 0 {
		return id[i+1:]
	}
	return id
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// acquiredMutexIDs returns the sorted class identities of every mutex fd
// locks directly (Lock or RLock, gated or not — an ordering fact holds
// whenever the acquisition happens). Acquisitions inside function literals
// and go statements run on another goroutine and are excluded.
func acquiredMutexIDs(info *types.Info, fd *ast.FuncDecl) []string {
	ids := make(map[string]bool)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if sel, op, ok := lockOp(info, x); ok && (op == "Lock" || op == "RLock") {
					if id := mutexID(info, sel); id != "" {
						ids[id] = true
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
