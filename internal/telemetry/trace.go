package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request-scoped span collection. The coordinator mints a
// Trace per query, threads its ID over the wire to shard nodes (a new,
// backward-compatible field on the distsearch request envelope), and records
// one span per serving phase (sample scatter, ranking, deep gather, rerank,
// generation). A nil *Trace is the disabled state: every method no-ops, so
// the serving path is instrumented unconditionally and pays nothing when
// tracing is off.
type Trace struct {
	id uint64

	mu    sync.Mutex
	spans []Span
	// droppedSpans counts spans discarded past maxTraceSpans.
	droppedSpans int64
}

// maxTraceSpans caps one trace's span list. A request-scoped trace records
// a handful of phases plus one span set per contacted shard node, staying
// far below the cap; the cap exists for the pathological cases — a trace
// object reused across requests, a stitching loop gone wrong — where
// unbounded telemetry would otherwise become the outage it is supposed to
// explain. Excess spans are counted (DroppedSpans), not recorded.
const maxTraceSpans = 4096

// NodeLocal marks a span recorded by the process that owns the trace (the
// coordinator itself) rather than shipped from a remote shard node.
const NodeLocal = -1

// Span is one completed phase of a traced request. Node identifies where the
// phase ran: NodeLocal for coordinator-side phases, a shard ID for spans
// shipped back from remote nodes.
type Span struct {
	Name     string
	Node     int
	Start    time.Time
	Duration time.Duration
}

// Label renders the span name qualified by its origin: "rank" for local
// spans, "n3.list_scan" for a span shipped from shard node 3.
func (s Span) Label() string {
	if s.Node == NodeLocal {
		return s.Name
	}
	return fmt.Sprintf("n%d.%s", s.Node, s.Name)
}

var (
	traceSeq  atomic.Uint64
	traceOnce sync.Once
	traceBase uint64
)

// NewTrace mints a trace with a process-unique ID: the high 32 bits carry
// start-time entropy (the low, fast-varying bits of the wall clock at first
// use, distinguishing processes), the low 32 bits a per-process sequence —
// IDs repeat only after 2^32 traces in one process, so distinct in-flight
// queries in a long-lived coordinator never share an ID.
func NewTrace() *Trace {
	return &Trace{id: NewTraceID()}
}

// NewTraceWithID wraps an already-minted identifier (NewTraceID) in a live
// Trace. The batcher mints a batch ID at flush time and the coordinator
// adopts it as the batch trace's ID, so the wire requests, the stitched
// waterfall, and every member query's BatchID agree on one identity.
func NewTraceWithID(id uint64) *Trace {
	return &Trace{id: id}
}

// NewTraceID mints a bare trace identifier with the same layout and
// uniqueness guarantees as NewTrace, for callers (e.g. the flight recorder's
// clients) that need an ID to correlate a query without carrying a *Trace.
func NewTraceID() uint64 {
	traceOnce.Do(func() {
		traceBase = uint64(now().UnixNano()) << 32
	})
	return traceBase | (traceSeq.Add(1) & (1<<32 - 1))
}

// ID returns the trace identifier, or 0 for a nil (disabled) trace — the
// zero value is what untraced wire requests carry.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// StartSpan opens a span and returns the closure that completes it. Typical
// use: done := tr.StartSpan("deep_gather"); ...; done(). Safe for
// concurrent spans on one trace.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := now()
	return func() {
		d := now().Sub(start)
		t.mu.Lock()
		t.appendSpanLocked(Span{Name: name, Node: NodeLocal, Start: start, Duration: d})
		t.mu.Unlock()
	}
}

// appendSpanLocked records a span under t.mu, enforcing maxTraceSpans.
func (t *Trace) appendSpanLocked(s Span) {
	if len(t.spans) >= maxTraceSpans {
		t.droppedSpans++
		return
	}
	t.spans = append(t.spans, s)
}

// DroppedSpans reports how many spans were discarded past maxTraceSpans —
// zero for every healthy request-scoped trace.
func (t *Trace) DroppedSpans() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedSpans
}

// AddSpan records an already-completed span, attributed to a node. The
// coordinator uses it to stitch wire-shipped shard-node spans (whose offsets
// it anchors at its own send time) into the trace. No-op on nil.
func (t *Trace) AddSpan(name string, node int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.appendSpanLocked(Span{Name: name, Node: node, Start: start, Duration: d})
	t.mu.Unlock()
}

// Spans returns the completed spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Durations returns total recorded time per span name.
func (t *Trace) Durations() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range t.Spans() {
		out[s.Name] += s.Duration
	}
	return out
}

// Breakdown renders the per-phase timing of the trace on one line, spans in
// start order: "trace 01c2a3f400000001: sample_scatter=412µs ... total=2ms
// busy=3ms". total is wall time — max span end minus min span start — so
// concurrent spans (parallel scatter legs, shipped node spans) are not
// double-counted; busy is the plain duration sum, so busy > total quantifies
// the overlap.
func (t *Trace) Breakdown() string {
	if t == nil {
		return "trace <disabled>"
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x:", t.id)
	for _, s := range spans {
		fmt.Fprintf(&b, " %s=%v", s.Label(), s.Duration)
	}
	total, busy := SpanTotals(spans)
	fmt.Fprintf(&b, " total=%v busy=%v", total, busy)
	return b.String()
}

// SpanTotals reduces a span set to (wall, busy): wall is max span end minus
// min span start (0 for an empty set), busy the sum of durations.
func SpanTotals(spans []Span) (wall, busy time.Duration) {
	if len(spans) == 0 {
		return 0, 0
	}
	minStart := spans[0].Start
	maxEnd := spans[0].Start.Add(spans[0].Duration)
	for _, s := range spans {
		busy += s.Duration
		if s.Start.Before(minStart) {
			minStart = s.Start
		}
		if end := s.Start.Add(s.Duration); end.After(maxEnd) {
			maxEnd = end
		}
	}
	return maxEnd.Sub(minStart), busy
}

// Waterfall renders the trace as a multi-line cross-node timing chart.
func (t *Trace) Waterfall() string {
	if t == nil {
		return "trace <disabled>"
	}
	return FormatWaterfall(t.id, t.Spans())
}

// FormatWaterfall renders spans (local and node-shipped alike) as an aligned
// waterfall: one line per span in start order, with start offset, duration,
// label, and a proportional bar positioned on the wall-time axis.
func FormatWaterfall(id uint64, spans []Span) string {
	if len(spans) == 0 {
		return fmt.Sprintf("trace %016x: no spans", id)
	}
	spans = append([]Span(nil), spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	wall, busy := SpanTotals(spans)
	base := spans[0].Start
	labelW := 0
	for _, s := range spans {
		if n := len(s.Label()); n > labelW {
			labelW = n
		}
	}
	const barW = 32
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x: wall=%v busy=%v spans=%d\n", id, wall, busy, len(spans))
	for _, s := range spans {
		off := s.Start.Sub(base)
		bar := [barW]byte{}
		for i := range bar {
			bar[i] = ' '
		}
		lo, hi := 0, barW
		if wall > 0 {
			lo = int(int64(off) * barW / int64(wall))
			hi = int(int64(off+s.Duration) * barW / int64(wall))
		}
		if lo >= barW {
			lo = barW - 1
		}
		if hi <= lo {
			hi = lo + 1
		}
		if hi > barW {
			hi = barW
		}
		for i := lo; i < hi; i++ {
			bar[i] = '='
		}
		fmt.Fprintf(&b, "  %10v %10v  %-*s |%s|\n", off, s.Duration, labelW, s.Label(), bar[:])
	}
	return strings.TrimRight(b.String(), "\n")
}
