// Package multinode reimplements the paper's multi-node analysis tool
// (Figure 15): it combines per-node hardware models with a trace of which
// shards each query's deep search touches, and aggregates them into
// end-to-end batch latency, throughput, and energy for a distributed
// retrieval tier. All of Figures 14, 16, 17, 18, 20, and 21 are computed
// through this package.
//
// Three retrieval organizations are modeled:
//
//   - Monolithic: one node holds the whole datastore.
//   - SplitAll: the datastore is sharded over N nodes and every node
//     searches every query (naive distribution).
//   - Hermes: every node runs the cheap sample phase for every query, then
//     only the trace-selected nodes run the deep phase for their share of
//     the batch.
//
// DVFS policies from Section 4.2 / Figure 21 apply to the deep phase:
// DVFSNone runs everything at base frequency; DVFSBaseline slows each node
// so it finishes no earlier than the slowest deep node; DVFSEnhanced slows
// nodes to the pipeline window (inference latency), the paper's "enhanced"
// variant.
package multinode

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/hwmodel"
)

// DVFSPolicy selects the deep-phase frequency assignment.
type DVFSPolicy int

const (
	// DVFSNone runs all nodes at base frequency.
	DVFSNone DVFSPolicy = iota
	// DVFSBaseline slows lightly-loaded nodes to the completion time of
	// the slowest deep node in the batch.
	DVFSBaseline
	// DVFSEnhanced slows nodes further, to the pipeline window set by LLM
	// inference (valid when retrieval is overlapped with inference).
	DVFSEnhanced
)

func (p DVFSPolicy) String() string {
	switch p {
	case DVFSNone:
		return "none"
	case DVFSBaseline:
		return "baseline"
	case DVFSEnhanced:
		return "enhanced"
	default:
		return fmt.Sprintf("DVFSPolicy(%d)", int(p))
	}
}

// Cluster is a homogeneous retrieval tier: one CPU node per shard.
type Cluster struct {
	CPU hwmodel.CPUSpec
	// ShardTokens is the datastore slice held by each node.
	ShardTokens []int64
}

// NewCluster builds a cluster of len(shardTokens) nodes.
func NewCluster(cpu hwmodel.CPUSpec, shardTokens []int64) (*Cluster, error) {
	if err := cpu.Validate(); err != nil {
		return nil, err
	}
	if len(shardTokens) == 0 {
		return nil, fmt.Errorf("multinode: cluster needs at least one shard")
	}
	for i, tok := range shardTokens {
		if tok <= 0 {
			return nil, fmt.Errorf("multinode: shard %d has %d tokens", i, tok)
		}
	}
	return &Cluster{CPU: cpu, ShardTokens: shardTokens}, nil
}

// EvenCluster builds a cluster of n equal shards splitting totalTokens.
func EvenCluster(cpu hwmodel.CPUSpec, totalTokens int64, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("multinode: node count must be positive")
	}
	shards := make([]int64, n)
	for i := range shards {
		shards[i] = totalTokens / int64(n)
	}
	return NewCluster(cpu, shards)
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.ShardTokens) }

// TotalTokens sums the shard sizes.
func (c *Cluster) TotalTokens() int64 {
	var t int64
	for _, s := range c.ShardTokens {
		t += s
	}
	return t
}

// BatchCost is the modeled cost of serving one batch of queries.
type BatchCost struct {
	Latency time.Duration
	EnergyJ float64
	// NodesBusy is the number of nodes that did deep work.
	NodesBusy int
}

// Throughput converts a batch cost into queries/second.
func (b BatchCost) Throughput(batch int) float64 {
	if b.Latency <= 0 {
		return 0
	}
	return float64(batch) / b.Latency.Seconds()
}

// Monolithic models a single node holding totalTokens serving the batch.
func Monolithic(cpu hwmodel.CPUSpec, totalTokens int64, batch int) BatchCost {
	lat := cpu.RetrievalLatency(totalTokens, batch, 0)
	return BatchCost{
		Latency:   lat,
		EnergyJ:   cpu.RetrievalEnergy(totalTokens, batch, 0),
		NodesBusy: 1,
	}
}

// SplitAll models the naive distributed baseline: all nodes search the whole
// batch concurrently; the batch completes when the slowest (largest) shard
// finishes, and every node burns active power for its busy time plus idle
// power while waiting.
func (c *Cluster) SplitAll(batch int) BatchCost {
	var window time.Duration
	for _, tok := range c.ShardTokens {
		if l := c.CPU.RetrievalLatency(tok, batch, 0); l > window {
			window = l
		}
	}
	var energy float64
	for _, tok := range c.ShardTokens {
		energy += c.CPU.EnergyInWindow(tok, batch, c.CPU.BaseGHz, window)
	}
	return BatchCost{Latency: window, EnergyJ: energy, NodesBusy: c.Nodes()}
}

// HermesConfig parameterizes the hierarchical search cost model.
type HermesConfig struct {
	// Batch is the query batch size.
	Batch int
	// DeepLoads[s] is the number of the batch's queries whose deep search
	// hit shard s (from a trace.BatchLoads entry, or synthetic).
	DeepLoads []int
	// SampleFraction is the cost of the sample phase relative to a deep
	// search of the same shard (≈ SampleNProbe/DeepNProbe; paper default
	// 8/128).
	SampleFraction float64
	// Policy selects the DVFS behaviour for the deep phase.
	Policy DVFSPolicy
	// PipelineWindow, when positive, is the wall-clock horizon the
	// retrieval tier lives inside (the pipelined LLM inference latency).
	// Energy is accounted over max(deep window, PipelineWindow) for every
	// policy — nodes idle until the pipeline closes either way — and
	// DVFSEnhanced additionally stretches node frequencies into it.
	PipelineWindow time.Duration
}

// Hermes models one batch under hierarchical search. Phase 1 (sampling) runs
// the full batch on every node at SampleFraction of deep cost; phase 2 (deep)
// runs each node's DeepLoads share. The batch latency is the sample window
// plus the deep window; energy charges each node its busy time at its chosen
// frequency plus idle for the remainder of the deep window.
func (c *Cluster) Hermes(cfg HermesConfig) (BatchCost, error) {
	if cfg.Batch <= 0 {
		return BatchCost{}, fmt.Errorf("multinode: batch must be positive")
	}
	if len(cfg.DeepLoads) != c.Nodes() {
		return BatchCost{}, fmt.Errorf("multinode: DeepLoads has %d entries for %d nodes", len(cfg.DeepLoads), c.Nodes())
	}
	if cfg.SampleFraction <= 0 || cfg.SampleFraction > 1 {
		return BatchCost{}, fmt.Errorf("multinode: SampleFraction %v out of (0,1]", cfg.SampleFraction)
	}

	// Phase 1 — sampling on every node, full batch, base frequency.
	var sampleWindow time.Duration
	sampleBusy := make([]time.Duration, c.Nodes())
	for s, tok := range c.ShardTokens {
		busy := time.Duration(float64(c.CPU.RetrievalLatency(tok, cfg.Batch, 0)) * cfg.SampleFraction)
		sampleBusy[s] = busy
		if busy > sampleWindow {
			sampleWindow = busy
		}
	}
	var energy float64
	samplePower := c.CPU.IdleWatts + (c.CPU.Power(c.CPU.BaseGHz)-c.CPU.IdleWatts)*c.CPU.Utilization(cfg.Batch)
	for s := range c.ShardTokens {
		busy := sampleBusy[s].Seconds()
		idle := sampleWindow.Seconds() - busy
		energy += samplePower*busy + c.CPU.IdleWatts*idle
	}

	// Phase 2 — deep search on loaded nodes.
	deepBase := make([]time.Duration, c.Nodes())
	var deepWindow time.Duration
	busyNodes := 0
	for s, tok := range c.ShardTokens {
		if cfg.DeepLoads[s] <= 0 {
			continue
		}
		busyNodes++
		deepBase[s] = c.CPU.RetrievalLatency(tok, cfg.DeepLoads[s], 0)
		if deepBase[s] > deepWindow {
			deepWindow = deepBase[s]
		}
	}
	// Energy horizon: all policies account idle time until the pipeline
	// window closes (when one is given); the policies differ only in how
	// fast nodes run inside it.
	horizon := deepWindow
	if cfg.PipelineWindow > horizon {
		horizon = cfg.PipelineWindow
	}
	for s, tok := range c.ShardTokens {
		if cfg.DeepLoads[s] <= 0 {
			energy += c.CPU.IdleWatts * horizon.Seconds()
			continue
		}
		freq := c.CPU.BaseGHz
		switch cfg.Policy {
		case DVFSBaseline:
			freq = c.CPU.FrequencyForLatency(tok, cfg.DeepLoads[s], deepWindow)
		case DVFSEnhanced:
			freq = c.CPU.FrequencyForLatency(tok, cfg.DeepLoads[s], horizon)
		}
		energy += c.CPU.EnergyInWindow(tok, cfg.DeepLoads[s], freq, horizon)
	}

	// Reported retrieval latency: sample + deep windows. DVFSEnhanced may
	// stretch the deep phase to the pipeline horizon, but that time is
	// hidden behind inference by construction.
	latency := sampleWindow + deepWindow
	if cfg.Policy == DVFSEnhanced && horizon > deepWindow {
		latency = sampleWindow + horizon
	}
	return BatchCost{Latency: latency, EnergyJ: energy, NodesBusy: busyNodes}, nil
}

// SkewedLoads builds a DeepLoads vector with Zipf-skewed shard popularity:
// each query picks deepClusters distinct shards with probability proportional
// to 1/rank^s over a seeded random shard ordering — the Figure 13 access
// pattern. Higher s concentrates load and widens the DVFS opportunity.
func SkewedLoads(nodes, batch, deepClusters int, s float64, seed int64) []int {
	if deepClusters > nodes {
		deepClusters = nodes
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, nodes)
	var sum float64
	perm := rng.Perm(nodes)
	for rank, node := range perm {
		w := 1.0
		if s > 0 {
			w = 1 / math.Pow(float64(rank+1), s)
		}
		weights[node] = w
		sum += w
	}
	loads := make([]int, nodes)
	for q := 0; q < batch; q++ {
		chosen := make(map[int]bool, deepClusters)
		for len(chosen) < deepClusters {
			x := rng.Float64() * sum
			var cum float64
			pick := nodes - 1
			for node, w := range weights {
				cum += w
				if x <= cum {
					pick = node
					break
				}
			}
			if !chosen[pick] {
				chosen[pick] = true
				loads[pick]++
			}
		}
	}
	return loads
}

// SpreadLoads builds a DeepLoads vector for the idealized balanced case:
// each query's deep search touches deepClusters distinct shards and the
// choices rotate across the whole cluster, so every node carries
// batch*deepClusters/nodes of the deep work. This is where Hermes' batch
// throughput gain comes from — each node sees only a slice of the batch
// instead of all of it.
func SpreadLoads(nodes, batch, deepClusters int) []int {
	loads := make([]int, nodes)
	if deepClusters > nodes {
		deepClusters = nodes
	}
	for u := 0; u < batch*deepClusters; u++ {
		loads[u%nodes]++
	}
	return loads
}
