package multinode

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/hwmodel"
	"repro/internal/trace"
)

func collectTrace(t *testing.T, shards, queries int) *trace.Trace {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{NumChunks: 1200, Dim: 16, NumTopics: shards, Seed: 3, ZipfS: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return trace.Collect(st, c.Queries(queries, 5), hermes.DefaultParams())
}

func TestReplayTraceValidation(t *testing.T) {
	cl := evenCluster(t, 10e9, 10)
	base := HermesConfig{SampleFraction: 8.0 / 128.0}
	if _, err := cl.ReplayTrace(nil, 32, base); err == nil {
		t.Fatal("nil trace should error")
	}
	tr := &trace.Trace{NumShards: 3, Entries: []trace.Entry{{QueryID: 0, DeepShards: []int{0}}}}
	if _, err := cl.ReplayTrace(tr, 32, base); err == nil {
		t.Fatal("shard-count mismatch should error")
	}
	tr10 := &trace.Trace{NumShards: 10, Entries: []trace.Entry{{QueryID: 0, DeepShards: []int{0}}}}
	if _, err := cl.ReplayTrace(tr10, 0, base); err == nil {
		t.Fatal("zero batch should error")
	}
}

func TestReplayTraceAggregation(t *testing.T) {
	tr := collectTrace(t, 10, 100)
	cl := evenCluster(t, 10e9, 10)
	base := HermesConfig{SampleFraction: 8.0 / 128.0}
	sum, err := cl.ReplayTrace(tr, 32, base)
	if err != nil {
		t.Fatal(err)
	}
	// 100 queries at batch 32 -> 4 windows (32+32+32+4).
	if sum.Batches != 4 || len(sum.PerBatch) != 4 {
		t.Fatalf("batches = %d", sum.Batches)
	}
	if sum.TotalLatency <= 0 || sum.TotalEnergyJ <= 0 || sum.MeanQPS <= 0 {
		t.Fatalf("degenerate summary %+v", sum)
	}
	var lat, en float64
	for _, b := range sum.PerBatch {
		lat += b.Latency.Seconds()
		en += b.EnergyJ
	}
	if diff := lat - sum.TotalLatency.Seconds(); diff > 1e-6 || diff < -1e-6 {
		t.Fatal("TotalLatency does not sum PerBatch")
	}
	if diff := en - sum.TotalEnergyJ; diff > 1e-6 || diff < -1e-6 {
		t.Fatal("TotalEnergyJ does not sum PerBatch")
	}
}

// Replaying a skewed real trace must cost no less than the idealized even
// spread (imbalance can only hurt the batch window), and DVFS must help.
func TestReplayTraceVsIdealSpread(t *testing.T) {
	tr := collectTrace(t, 10, 96)
	cl := evenCluster(t, 10e9, 10)
	base := HermesConfig{SampleFraction: 8.0 / 128.0}
	replay, err := cl.ReplayTrace(tr, 32, base)
	if err != nil {
		t.Fatal(err)
	}
	idealCfg := base
	idealCfg.Batch = 32
	idealCfg.DeepLoads = SpreadLoads(10, 32, 3)
	ideal, err := cl.Hermes(idealCfg)
	if err != nil {
		t.Fatal(err)
	}
	perBatch := replay.TotalLatency / 3 // first three full windows dominate
	if perBatch < ideal.Latency {
		t.Fatalf("skewed replay window %v should be >= ideal spread %v", perBatch, ideal.Latency)
	}

	dvfs := base
	dvfs.Policy = DVFSBaseline
	saved, err := cl.ReplayTrace(tr, 32, dvfs)
	if err != nil {
		t.Fatal(err)
	}
	if saved.TotalEnergyJ > replay.TotalEnergyJ {
		t.Fatalf("DVFS replay energy %v should not exceed no-DVFS %v", saved.TotalEnergyJ, replay.TotalEnergyJ)
	}
}

func TestReplayTraceUsesCPU(t *testing.T) {
	tr := collectTrace(t, 10, 64)
	gold, err := EvenCluster(hwmodel.XeonGold6448Y, 10e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := EvenCluster(hwmodel.XeonPlatinum8380, 10e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	base := HermesConfig{SampleFraction: 8.0 / 128.0}
	sGold, err := gold.ReplayTrace(tr, 32, base)
	if err != nil {
		t.Fatal(err)
	}
	sPlat, err := plat.ReplayTrace(tr, 32, base)
	if err != nil {
		t.Fatal(err)
	}
	if sPlat.TotalLatency >= sGold.TotalLatency {
		t.Fatal("Platinum replay should be faster than Gold")
	}
}
