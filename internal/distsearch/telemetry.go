package distsearch

import (
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// now is the injectable clock seam for deadline arithmetic (span and
// histogram timing already run through internal/telemetry's own seam).
var now = time.Now

// opName renders an Op as a metric label value.
func opName(op Op) string {
	switch op {
	case OpInfo:
		return "info"
	case OpSample:
		return "sample"
	case OpDeep:
		return "deep"
	case OpShutdown:
		return "shutdown"
	case OpSampleBatch:
		return "sample_batch"
	case OpDeepBatch:
		return "deep_batch"
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpStats:
		return "stats"
	case OpCompact:
		return "compact"
	case OpMetricsSnap:
		return "metrics_snap"
	default:
		return "unknown"
	}
}

// allOps enumerates the wire protocol for per-op handle tables.
var allOps = []Op{
	OpInfo, OpSample, OpDeep, OpShutdown, OpSampleBatch, OpDeepBatch,
	OpAdd, OpRemove, OpStats, OpCompact, OpMetricsSnap,
}

// coordMetrics bundles the coordinator-side metric handles. Handles are
// resolved once at dial time so the per-request hot path touches only
// atomics; every field tolerates a nil registry (nil handles no-op).
type coordMetrics struct {
	reg          *telemetry.Registry
	inflight     *telemetry.Gauge
	errors       *telemetry.Counter
	deadlineHits *telemetry.Counter
	queries      *telemetry.Counter
	phaseSample  *telemetry.Histogram
	phaseDeep    *telemetry.Histogram
	batchSize    *telemetry.Histogram
	byOp         map[Op]*telemetry.Counter

	// groupDegrades counts grouped batch requests a node served without
	// grouped execution (Response.GroupedExec false — a pre-v6 node that
	// dropped the Grouped flag and ran per-query). Previously invisible.
	groupDegrades *telemetry.Counter

	// Per-query cost-ledger histograms (hermes_query_cost_*): one observation
	// per completed query, grouped or not, from the coordinator's assembled
	// QueryCost.
	costScan   *telemetry.Histogram
	costWire   *telemetry.Histogram
	costShared *telemetry.Histogram
	costCells  *telemetry.Histogram
	costCodes  *telemetry.Histogram
}

func newCoordMetrics(reg *telemetry.Registry) *coordMetrics {
	m := &coordMetrics{
		reg: reg,
		//lint:ignore metricname in-flight round-trips are a resident count, not a flow or a unit-bearing quantity
		inflight: reg.Gauge("hermes_distsearch_inflight",
			"round-trips currently in flight across all nodes"),
		errors: reg.Counter("hermes_distsearch_errors_total",
			"failed round-trips (all causes, including deadline hits)"),
		deadlineHits: reg.Counter("hermes_distsearch_deadline_hits_total",
			"round-trips aborted by the per-request I/O deadline"),
		queries: reg.Counter("hermes_coordinator_queries_total",
			"hierarchical queries executed by this coordinator"),
		phaseSample: reg.Histogram("hermes_coordinator_phase_seconds",
			"wall time of each search phase", telemetry.DefLatencyBuckets, "phase", "sample"),
		phaseDeep: reg.Histogram("hermes_coordinator_phase_seconds",
			"wall time of each search phase", telemetry.DefLatencyBuckets, "phase", "deep"),
		//lint:ignore metricname batch size is a dimensionless query count per call
		batchSize: reg.Histogram("hermes_coordinator_batch_size",
			"queries per SearchBatch call", telemetry.DefSizeBuckets),
		byOp: make(map[Op]*telemetry.Counter, len(allOps)),
		groupDegrades: reg.Counter("hermes_coordinator_group_degrade_total",
			"grouped batch requests a node degraded to per-query execution (pre-v6 node)"),
		costScan: reg.Histogram("hermes_query_cost_scan_seconds",
			"per-query attributed scan time (codes-proportional share of measured scan phases; traced queries only)",
			telemetry.DefLatencyBuckets),
		costWire: reg.Histogram("hermes_query_cost_wire_bytes",
			"per-query attributed coordinator<->node wire traffic", telemetry.DefByteBuckets),
		costShared: reg.Histogram("hermes_query_cost_shared_ratio",
			"fraction of a query's attributed codes that came from shared (amortized) cell streams",
			[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}),
		//lint:ignore metricname probed cells are a dimensionless count per query, not a unit-bearing quantity
		costCells: reg.Histogram("hermes_query_cost_cells",
			"IVF cells probed per query across all shards and phases", telemetry.DefSizeBuckets),
		//lint:ignore metricname attributed codes are a dimensionless count per query, not a unit-bearing quantity
		costCodes: reg.Histogram("hermes_query_cost_codes",
			"codes attributed per query (exclusive + shared-amortized)", defCodeBuckets),
	}
	for _, op := range allOps {
		m.byOp[op] = reg.Counter("hermes_distsearch_requests_total",
			"round-trips issued by op", "op", opName(op))
	}
	return m
}

// defCodeBuckets spans per-query attributed code counts: tiny sampled probes
// up through deep scans over large shards.
var defCodeBuckets = []float64{16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// observeCost lands one completed query's assembled ledger entry on the
// hermes_query_cost_* histograms. ScanNanos is only observed when present
// (untraced queries carry none by contract — observing their zeros would
// drown the latency histogram's signal).
func (m *coordMetrics) observeCost(c telemetry.QueryCost) {
	if c.ScanNanos > 0 {
		m.costScan.ObserveDuration(time.Duration(c.ScanNanos))
	}
	m.costWire.Observe(float64(c.WireBytes))
	m.costShared.Observe(c.SharedFrac())
	m.costCells.Observe(float64(c.Cells))
	m.costCodes.Observe(float64(c.Codes()))
}

func (m *coordMetrics) opCounter(op Op) *telemetry.Counter {
	if c, ok := m.byOp[op]; ok {
		return c
	}
	return nil
}

// clientMetrics are the per-node-connection handles (labeled by shard).
type clientMetrics struct {
	roundTrip *telemetry.Histogram
	compute   *telemetry.Histogram
	sent      *telemetry.Counter
	recv      *telemetry.Counter
	deepTotal *telemetry.Counter
}

func newClientMetrics(reg *telemetry.Registry, shardID int) clientMetrics {
	node := strconv.Itoa(shardID)
	return clientMetrics{
		roundTrip: reg.Histogram("hermes_distsearch_roundtrip_seconds",
			"full round-trip time per node", telemetry.DefLatencyBuckets, "node", node),
		compute: reg.Histogram("hermes_distsearch_node_compute_seconds",
			"node-reported handling time per node (round-trip minus wire)", telemetry.DefLatencyBuckets, "node", node),
		sent: reg.Counter("hermes_distsearch_bytes_sent_total",
			"request bytes sent per node", "node", node),
		recv: reg.Counter("hermes_distsearch_bytes_recv_total",
			"response bytes received per node", "node", node),
		deepTotal: reg.Counter("hermes_coordinator_shard_deep_total",
			"deep searches this coordinator sent to each shard (the live Fig. 13 load view)", "shard", node),
	}
}

// countingWriter / countingReader feed the wire byte counters; they wrap the
// connection underneath the gob codec so encoded sizes are measured exactly.
// n, when set, additionally accumulates into a per-connection total the
// coordinator reads before/after a round-trip for exact per-request byte
// deltas (the per-connection mutex serializes exchanges, so a delta is
// attributable to exactly one request).
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	if cw.n != nil {
		cw.n.Add(int64(n))
	}
	return n, err
}

type countingReader struct {
	r io.Reader
	c *telemetry.Counter
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	if cr.n != nil {
		cr.n.Add(int64(n))
	}
	return n, err
}

// nodeMetrics are the node-side handles (one table per served shard).
type nodeMetrics struct {
	reg      *telemetry.Registry
	traced   *telemetry.Counter
	requests map[Op]*telemetry.Counter
	seconds  map[Op]*telemetry.Histogram
	// scanSeconds times the raw index scans inside search ops (request
	// handling minus protocol overhead), labeled by shard and the shard's
	// quantizer kind so /metrics answers "how fast does each compression
	// scheme scan" per node; the coordinator -stats view surfaces its p95.
	scanSeconds *telemetry.Histogram
	// groupscanQueries / groupscanShared account the grouped batch path:
	// queries served through ivf.SearchGroup and the per-cell code streams
	// the grouping avoided versus per-query execution.
	groupscanQueries *telemetry.Counter
	groupscanShared  *telemetry.Counter
}

func newNodeMetrics(reg *telemetry.Registry, shardID int, quantizer string) *nodeMetrics {
	shard := strconv.Itoa(shardID)
	m := &nodeMetrics{
		reg: reg,
		traced: reg.Counter("hermes_node_traced_requests_total",
			"requests carrying a coordinator trace ID", "shard", shard),
		requests: make(map[Op]*telemetry.Counter, len(allOps)),
		seconds:  make(map[Op]*telemetry.Histogram, len(allOps)),
		scanSeconds: reg.Histogram("hermes_node_scan_seconds",
			"per-query index scan time by shard and quantizer kind",
			telemetry.DefLatencyBuckets, "shard", shard, "quantizer", quantizer),
		groupscanQueries: reg.Counter("hermes_node_groupscan_queries_total",
			"batch queries served through the grouped multi-query cell scan", "shard", shard),
		groupscanShared: reg.Counter("hermes_node_groupscan_shared_scans_total",
			"per-cell code streams saved by grouped batch execution", "shard", shard),
	}
	for _, op := range allOps {
		m.requests[op] = reg.Counter("hermes_node_requests_total",
			"requests served by op", "shard", shard, "op", opName(op))
		m.seconds[op] = reg.Histogram("hermes_node_request_seconds",
			"node-side handling time by op", telemetry.DefLatencyBuckets, "shard", shard, "op", opName(op))
	}
	return m
}

func (m *nodeMetrics) observe(op Op, d time.Duration, traceID uint64) {
	m.requests[op].Inc()
	m.seconds[op].ObserveDuration(d)
	if traceID != 0 {
		m.traced.Inc()
	}
}
