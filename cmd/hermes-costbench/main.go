// Command hermes-costbench measures what PR 9's per-query cost ledger and
// grouped tracing cost the serving path and writes the machine-readable
// record scripts/bench.sh publishes as BENCH_PR9.json.
//
// Two suites run over a topic-skewed query batch on a reused GroupSearcher —
// the steady-state grouped serving configuration:
//
//   - untraced: the grouped scan with the cost ledger live (amortization
//     counters accumulate into pooled slots, CostStats read per query).
//     This is the acceptance gate: the untraced grouped hot path must stay
//     allocation-free per batch with the ledger riding along, and it never
//     reads a clock by contract.
//   - traced: the same batch through SearchPhased (phase timers armed) with
//     per-query ledger and phase reads. Tracing buys the waterfall and the
//     attributed scan time, and pays clock reads around the three phases;
//     the record gates its ns/batch at a fixed multiple of the untraced run.
//
// The process exits non-zero when the untraced path allocates or the traced
// overhead ratio exceeds the recorded bound, so bench.sh doubles as the
// acceptance gate.
//
// Usage:
//
//	hermes-costbench                   # text summary + BENCH_PR9.json
//	hermes-costbench -out bench.json   # alternate output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"text/tabwriter"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/vec"
)

// scenario is one measured grouped-scan configuration.
type scenario struct {
	Name        string  `json:"name"`
	Queries     int     `json:"queries"`
	NsPerBatch  float64 `json:"ns_per_batch"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MustZeroAllocs marks the acceptance-gated paths.
	MustZeroAllocs bool `json:"must_zero_allocs"`
}

type report struct {
	GOOS     string     `json:"goos"`
	GOARCH   string     `json:"goarch"`
	CPUs     int        `json:"cpus"`
	Scan     []scenario `json:"scan"`
	Overhead struct {
		// TracedRatio is traced ns/batch over untraced ns/batch as measured
		// by this run; Bound is the acceptance ceiling it is gated against.
		TracedRatio float64 `json:"traced_ratio"`
		Bound       float64 `json:"bound"`
	} `json:"overhead"`
}

// tracedOverheadBound is the acceptance ceiling on traced/untraced ns per
// batch. Tracing adds a handful of clock reads around whole phases plus the
// scan-time attribution, which must stay a modest constant factor — it exists
// so "trace everything" is a deployable default, not a profiling mode.
const tracedOverheadBound = 1.75

func main() {
	var (
		outFlag = flag.String("out", "BENCH_PR9.json", "JSON output path")
		chunks  = flag.Int("chunks", 20000, "corpus size")
		dim     = flag.Int("dim", 64, "embedding dim")
		shards  = flag.Int("shards", 4, "shard count")
		topics  = flag.Int("topics", 4, "corpus topics (fewer = heavier cell skew)")
		batch   = flag.Int("batch", 64, "queries per grouped batch")
		seed    = flag.Int64("seed", 19, "generation seed")
	)
	flag.Parse()

	c, err := corpus.Generate(corpus.Spec{NumChunks: *chunks, Dim: *dim, NumTopics: *topics, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "building %d-shard store over %d chunks (dim %d, %d topics)...\n",
		*shards, *chunks, *dim, *topics)
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: *shards})
	if err != nil {
		fatal(err)
	}
	p := hermes.DefaultParams()
	qs := c.Queries(*batch, *seed+1)
	rows := make([][]float32, qs.Vectors.Len())
	for i := range rows {
		rows[i] = qs.Vectors.Row(i)
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	rep.Scan = benchScan(st, rows, p)
	rep.Overhead.TracedRatio = rep.Scan[1].NsPerBatch / rep.Scan[0].NsPerBatch
	rep.Overhead.Bound = tracedOverheadBound

	printReport(rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", *outFlag)

	if msg := checkAcceptance(rep); msg != "" {
		fatal(fmt.Errorf("%s", msg))
	}
	fmt.Println("acceptance: untraced grouped ledger path allocation-free; traced overhead within bound")
}

// benchScan times the grouped scan with the cost ledger live on the first
// shard, untraced (index 0, the zero-alloc gate) and traced through the
// phase timers (index 1).
func benchScan(st *hermes.Store, rows [][]float32, p hermes.Params) []scenario {
	ix := st.Shards[0].Index
	gs := ix.NewGroupSearcher()
	dst := make([]vec.Neighbor, 0, p.K*len(rows))
	costs := make([]ivf.CostStats, len(rows))

	untraced := func() {
		gs.Search(rows, p.K, p.DeepNProbe)
		for i := range rows {
			dst = gs.AppendResults(i, dst[:0])
			costs[i] = gs.CostStats(i)
		}
	}
	traced := func() {
		gs.SearchPhased(rows, p.K, p.DeepNProbe)
		for i := range rows {
			dst = gs.AppendResults(i, dst[:0])
			costs[i] = gs.CostStats(i)
		}
		_ = gs.Phases()
	}
	untraced() // warm the slots, kernels, and pair buffers
	traced()

	run := func(fn func()) *testing.BenchmarkResult {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		return &res
	}
	un := run(untraced)
	tr := run(traced)
	return []scenario{
		{
			Name:           "groupscan_ledger_untraced",
			Queries:        len(rows),
			NsPerBatch:     float64(un.NsPerOp()),
			AllocsPerOp:    testing.AllocsPerRun(100, untraced),
			MustZeroAllocs: true,
		},
		{
			Name:        "groupscan_ledger_traced",
			Queries:     len(rows),
			NsPerBatch:  float64(tr.NsPerOp()),
			AllocsPerOp: testing.AllocsPerRun(100, traced),
		},
	}
}

// checkAcceptance returns a failure message, or "" when the record meets the
// PR 9 bar: the untraced grouped ledger path must be allocation-free, and
// traced execution must stay within the recorded overhead bound.
func checkAcceptance(rep report) string {
	for _, s := range rep.Scan {
		if s.MustZeroAllocs && s.AllocsPerOp != 0 {
			return fmt.Sprintf("scenario %s allocates %.2f/op; must be 0", s.Name, s.AllocsPerOp)
		}
	}
	if rep.Overhead.TracedRatio > rep.Overhead.Bound {
		return fmt.Sprintf("traced grouped scan is %.2fx untraced; bound is %.2fx",
			rep.Overhead.TracedRatio, rep.Overhead.Bound)
	}
	return ""
}

func printReport(rep report) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scan scenario\tqueries\tns/batch\tallocs/op\tmust-zero\n")
	for _, s := range rep.Scan {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f\t%v\n", s.Name, s.Queries, s.NsPerBatch, s.AllocsPerOp, s.MustZeroAllocs)
	}
	fmt.Fprintf(tw, "\ntraced overhead\t%.2fx (bound %.2fx)\n", rep.Overhead.TracedRatio, rep.Overhead.Bound)
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-costbench:", err)
	os.Exit(1)
}
