package ivf

import (
	"testing"

	"repro/internal/flatindex"
	"repro/internal/metrics"
	"repro/internal/quant"
)

func TestResidualEncodingImprovesCoarseQuantizers(t *testing.T) {
	// Residual encoding should lift recall for aggressive quantizers
	// (SQ4, PQ): residuals are small, so the same bit budget covers them
	// with finer resolution.
	data := gaussianData(3000, 16, 40)
	queries := gaussianData(64, 16, 41)
	ref := flatindex.New(16)
	ref.AddBatch(0, data)
	truth := ref.GroundTruth(queries, 10)

	eval := func(byResidual bool, mk func() quant.Quantizer) float64 {
		ix, err := New(Config{Dim: 16, NList: 30, Quantizer: mk(), Seed: 1, ByResidual: byResidual})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.Train(data); err != nil {
			t.Fatal(err)
		}
		if err := ix.AddBatch(0, data); err != nil {
			t.Fatal(err)
		}
		got := make([][]int64, queries.Len())
		for i := 0; i < queries.Len(); i++ {
			for _, n := range ix.Search(queries.Row(i), 10, 8) {
				got[i] = append(got[i], n.ID)
			}
		}
		return metrics.MeanRecall(got, truth, 10)
	}

	mkSQ4 := func() quant.Quantizer { return quant.NewSQ(16, 4) }
	plain := eval(false, mkSQ4)
	residual := eval(true, mkSQ4)
	if residual < plain-0.02 {
		t.Fatalf("SQ4 residual recall %v should be >= plain %v", residual, plain)
	}

	mkPQ := func() quant.Quantizer {
		pq, err := quant.NewPQ(16, 4, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		return pq
	}
	plainPQ := eval(false, mkPQ)
	residualPQ := eval(true, mkPQ)
	if residualPQ < plainPQ {
		t.Fatalf("PQ residual recall %v should be >= plain %v", residualPQ, plainPQ)
	}
	// For PQ the improvement should be material on Gaussian data.
	if residualPQ-plainPQ < 0.01 && plainPQ < 0.98 {
		t.Logf("PQ residual gain small: %v -> %v", plainPQ, residualPQ)
	}
}

func TestResidualFlatIsExactPerCell(t *testing.T) {
	// With a Flat quantizer, residual encoding must not change results at
	// all: ||(q-c) - (v-c)|| == ||q-v||.
	data := gaussianData(500, 8, 42)
	plain := buildIndex(t, data, Config{Dim: 8, NList: 10, Seed: 3})
	ix, err := New(Config{Dim: 8, NList: 10, Seed: 3, ByResidual: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Train(data); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddBatch(0, data); err != nil {
		t.Fatal(err)
	}
	queries := gaussianData(20, 8, 43)
	for i := 0; i < queries.Len(); i++ {
		a := plain.Search(queries.Row(i), 5, 5)
		b := ix.Search(queries.Row(i), 5, 5)
		for j := range a {
			if a[j].ID != b[j].ID {
				t.Fatalf("query %d pos %d: plain %d != residual %d", i, j, a[j].ID, b[j].ID)
			}
		}
	}
}

func TestResidualMutationRoundTrip(t *testing.T) {
	data := gaussianData(300, 8, 44)
	ix, err := New(Config{Dim: 8, NList: 8, Seed: 4, ByResidual: true, Quantizer: quant.NewSQ(8, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Train(data); err != nil {
		t.Fatal(err)
	}
	if err := ix.AddBatch(0, data); err != nil {
		t.Fatal(err)
	}
	if !ix.Remove(5) {
		t.Fatal("remove failed")
	}
	if err := ix.Add(5, data.Row(5)); err != nil {
		t.Fatal(err)
	}
	res := ix.Search(data.Row(5), 1, ix.NList())
	if len(res) == 0 || res[0].ID != 5 {
		t.Fatalf("re-added residual vector not found: %+v", res)
	}
}
