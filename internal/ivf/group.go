package ivf

import (
	"fmt"
	"time"

	"repro/internal/quant"
	"repro/internal/vec"
)

// This file implements the shared multi-query grouped cell scan (ISSUE 8 /
// ROADMAP item 3). When G queries of one batch probe the same IVF cell, the
// sequential path streams that cell's codes through the kernels G times; the
// grouped path streams them once per block and evaluates all G bound queries
// against the block while it is hot in cache. The distance kernels, the block
// boundaries, and the fold into vec.TopK are exactly the single-query path's,
// so per-query results are bit-equivalent to sequential execution (the only
// divergence is per-query cell visit order, which cannot change a top-k set
// when scores are distinct; see DESIGN.md §13).

// cellRef names one (cell, query-slot) probe. The grouped scan buckets the
// batch's refs by cell so co-probing queries form contiguous runs.
type cellRef struct {
	cell int32
	slot int32
}

// groupSlot is the per-query state inside a GroupSearcher: its own distance
// kernel (kernels carry per-query tables — PQ ADC tables, SQ4 LUTs — so they
// cannot be shared across queries), its own top-k selector, its residual
// buffer, and its selected probe cells. Slots are lazily created and then
// recycled with the GroupSearcher.
type groupSlot struct {
	kernel  quant.BatchDistancer
	tk      *vec.TopK
	qres    []float32 // query residual vs. the probed centroid (ByResidual)
	q       []float32 // the bound query, alive for the whole group scan
	cells   []int32   // selected probe cells, ascending centroid distance
	scanned int       // live vectors this query logically scanned

	// Cost-ledger counters (ISSUE 9). shared counts probe cells whose code
	// stream was shared with at least one other query of the batch;
	// exclusive/amortized split the distinct streamed codes attributed to
	// this query: codes streamed solely for it versus its exact share of
	// streams it co-probed. Across a batch,
	// sum(exclusive+amortized) == GroupStats.VectorsScanned.
	shared    int
	exclusive int64
	amortized int64
}

// CostStats is one query's slice of a grouped batch's cost ledger, in
// attribution terms rather than the logical terms of SearchStats:
// CodesExclusive counts live codes streamed solely for this query,
// CodesAmortized this query's exact share of streams it co-probed with other
// queries (shares differ by at most one code; remainders go to the
// lowest-numbered slots, so the split is deterministic). Summed over a batch,
// CodesExclusive+CodesAmortized equals GroupStats.VectorsScanned exactly —
// the distinct code traffic, fully attributed, nothing double-counted.
type CostStats struct {
	CellsProbed    int
	SharedCells    int // probe cells whose stream was shared with >= 1 other query
	CodesExclusive int64
	CodesAmortized int64
}

// GroupStats reports the work done by one grouped batch. VectorsScanned
// counts distinct streamed vectors (the actual code traffic); each query's
// logical scan count — what the sequential path would have streamed — is
// available per slot via QueryStats. SharedCellScans is the number of cell
// scans the grouping avoided: sum over cells of (co-probing queries - 1).
type GroupStats struct {
	Queries         int
	CellsScanned    int // distinct (cell) visits streamed once
	SharedCellScans int // cell scans saved vs. per-query execution
	VectorsScanned  int // distinct live vectors streamed
}

// GroupSearcher executes a batch of queries with shared per-cell scans. Like
// Searcher it owns all scratch — per-query slots, the shared block distance
// buffer, the (cell, slot) ref list, and the probe-selection heap — so a
// warmed GroupSearcher serves an unbounded stream of batches with zero heap
// allocations. It is not safe for concurrent use; create one per goroutine
// (or let Index.SearchGroup draw from the index's internal pool). Results are
// held in the per-slot selectors until drained with AppendResults, which is
// destructive and must be called at most once per slot per Search.
type GroupSearcher struct {
	ix    *Index
	slots []*groupSlot
	dist  []float32 // shared per-block distances, scanBlock long
	pairs []cellRef // (cell, slot) refs, bucketed by cell then slot
	offs  []int32   // per-cell counting-sort offsets, NList+1 long
	heap  []cellDist
	n     int  // queries in the current batch
	empty bool // true until a Search completes; guards stale results

	// ph points at phase when the current batch is phased (SearchPhased);
	// nil keeps every clock read off the untraced path, exactly like
	// Searcher.search's ph parameter. AppendResults folds its drain time
	// into phase.Merge while armed.
	ph    *PhaseNanos
	phase PhaseNanos
}

// NewGroupSearcher returns a fresh grouped-scan handle. All buffers grow on
// first use and are reused afterwards.
func (ix *Index) NewGroupSearcher() *GroupSearcher {
	return &GroupSearcher{
		ix:    ix,
		dist:  make([]float32, scanBlock),
		empty: true,
	}
}

// getGroupSearcher draws a warmed GroupSearcher from the index pool.
func (ix *Index) getGroupSearcher() *GroupSearcher {
	if g, ok := ix.groupPool.Get().(*GroupSearcher); ok {
		//lint:ignore poolescape typed pool accessor: every getGroupSearcher is paired with a groupPool.Put by Index.SearchGroup, which keeps the Get/Put bracket one level up
		return g
	}
	return ix.NewGroupSearcher()
}

// Search runs all queries against the index with shared per-cell scans,
// retaining each query's top-k in its slot (drain with AppendResults). Every
// query probes its own nProbe closest cells exactly as the single-query path
// would; only the execution order is grouped. The query slices must stay
// unmodified until the next Search (kernels bind them by reference).
//
// The //hermes:hotpath contract applies: steady-state batches on a warmed
// GroupSearcher perform no heap allocations and never read the clock.
//
//hermes:hotpath
func (g *GroupSearcher) Search(queries [][]float32, k, nProbe int) GroupStats {
	return g.search(queries, k, nProbe, nil)
}

// SearchPhased is Search plus a batch-level per-phase wall-time breakdown:
// probe selection (per-query setup and the counting-sort flatten), the shared
// per-cell scan runs, and — accumulated by the AppendResults drains that
// follow — the top-k merges. Each phase is timed once for the whole batch,
// which is the truth of grouped execution: the phases are shared, not
// per-query. Read the breakdown with Phases after draining every slot. Like
// Searcher.SearchPhased it reads the clock, so it is reserved for traced
// batches; the untraced hot path stays clock-free.
func (g *GroupSearcher) SearchPhased(queries [][]float32, k, nProbe int) GroupStats {
	g.phase = PhaseNanos{}
	return g.search(queries, k, nProbe, &g.phase)
}

// Phases returns the current batch's phase breakdown: zero unless the batch
// ran through SearchPhased, and complete only once every slot has been
// drained (AppendResults accounts the merge phase).
func (g *GroupSearcher) Phases() PhaseNanos { return g.phase }

// search is the shared body; ph non-nil turns on batch-level phase timing.
// The //hermes:hotpath contract (enforced by hermes-lint) keeps every clock
// read gated behind `if ph != nil`, so steady-state untraced batches on a
// warmed GroupSearcher perform no heap allocations and never read the clock.
//
//hermes:hotpath
func (g *GroupSearcher) search(queries [][]float32, k, nProbe int, ph *PhaseNanos) GroupStats {
	ix := g.ix
	g.n = len(queries)
	g.empty = true
	g.ph = ph
	if ph == nil {
		// A pooled searcher may have served a phased batch last; stale phase
		// numbers must not survive into this batch's Phases view.
		g.phase = PhaseNanos{}
	}
	var stats GroupStats
	stats.Queries = len(queries)
	if !ix.trained || k <= 0 || ix.count == 0 || len(queries) == 0 {
		return stats
	}
	if nProbe <= 0 {
		nProbe = 1
	}
	if nProbe > ix.cfg.NList {
		nProbe = ix.cfg.NList
	}
	n := len(queries)
	if cap(g.slots) < n {
		ns := make([]*groupSlot, n)
		copy(ns, g.slots)
		g.slots = ns
	}
	g.slots = g.slots[:n]

	var mark time.Time
	if ph != nil {
		mark = now()
	}
	// Per-query setup: lazily create the slot, select probe cells with the
	// same bounded-heap selection as the single-query path, and bind the
	// query into the slot's kernel (residual queries re-bind per cell).
	total := 0
	for i, q := range queries {
		if len(q) != ix.cfg.Dim {
			panic(fmt.Sprintf("ivf: SearchGroup dim %d != %d", len(q), ix.cfg.Dim))
		}
		s := g.slots[i]
		if s == nil {
			s = &groupSlot{
				kernel: quant.NewBatchDistancer(ix.cfg.Quantizer),
				qres:   make([]float32, ix.cfg.Dim),
			}
			g.slots[i] = s
		}
		if s.tk == nil {
			s.tk = vec.NewTopK(k)
		} else {
			s.tk.Reset(k)
		}
		s.q = q
		s.scanned = 0
		s.shared = 0
		s.exclusive = 0
		s.amortized = 0
		g.heap, s.cells = selectProbeCells(ix, q, nProbe, g.heap, s.cells)
		if !ix.cfg.ByResidual {
			s.kernel.BindQuery(q)
		}
		total += len(s.cells)
	}

	// Flatten to (cell, slot) refs bucketed by cell with a counting sort:
	// cells are dense in [0, NList), so co-probing queries form contiguous
	// runs without a single comparison (a comparison sort here costs ~20%
	// of grouped batch time). Scattering slots in batch order keeps the
	// within-cell order deterministic — slot ascending per cell.
	nl := ix.cfg.NList
	if cap(g.offs) < nl+1 {
		g.offs = make([]int32, nl+1)
	}
	offs := g.offs[:nl+1]
	for i := range offs {
		offs[i] = 0
	}
	for i := 0; i < n; i++ {
		for _, c := range g.slots[i].cells {
			offs[c+1]++
		}
	}
	for c := 0; c < nl; c++ {
		offs[c+1] += offs[c]
	}
	if cap(g.pairs) < total {
		g.pairs = make([]cellRef, total)
	}
	g.pairs = g.pairs[:total]
	for i := 0; i < n; i++ {
		for _, c := range g.slots[i].cells {
			g.pairs[offs[c]] = cellRef{cell: c, slot: int32(i)}
			offs[c]++
		}
	}

	if ph != nil {
		t := now()
		ph.Select += t.Sub(mark).Nanoseconds()
		mark = t
	}

	cs := ix.cfg.Quantizer.CodeSize()
	pairs := g.pairs
	for p0 := 0; p0 < len(pairs); {
		c := pairs[p0].cell
		p1 := p0 + 1
		for p1 < len(pairs) && pairs[p1].cell == c {
			p1++
		}
		group := pairs[p0:p1]
		p0 = p1
		stats.CellsScanned++
		stats.SharedCellScans += len(group) - 1
		if len(group) > 1 {
			// Shared-cell marking counts empty cells too, mirroring how
			// CellsScanned/SharedCellScans account every distinct visit.
			for _, pr := range group {
				g.slots[pr.slot].shared++
			}
		}
		l := &ix.lists[c]
		if len(l.ids) == 0 {
			continue
		}
		if ix.cfg.ByResidual {
			// Every query in the group re-binds its residual from this
			// cell's centroid before the shared stream, exactly as the
			// sequential path does per probed cell.
			centroid := ix.centroids.Row(int(c))
			for _, pr := range group {
				s := g.slots[pr.slot]
				for d := range s.q {
					s.qres[d] = s.q[d] - centroid[d]
				}
				s.kernel.BindQuery(s.qres)
			}
		}
		var dead []uint32
		if ix.deadCount > 0 && ix.deadPos != nil {
			dead = ix.deadPos[c]
		}
		live := g.scanCellGroup(l, cs, dead, group)
		stats.VectorsScanned += live
		if len(group) == 1 {
			s := g.slots[group[0].slot]
			s.scanned += live
			s.exclusive += int64(live)
		} else {
			// Amortize the one shared stream across its co-probers exactly:
			// each gets floor(live/G), the first live%G slots (deterministic —
			// the counting sort scatters slots ascending within a cell) one
			// more. The split sums to live, so batch-wide
			// Σ(exclusive+amortized) == VectorsScanned with no rounding loss.
			gN := len(group)
			share := int64(live / gN)
			rem := live % gN
			for j, pr := range group {
				s := g.slots[pr.slot]
				s.scanned += live
				s.amortized += share
				if j < rem {
					s.amortized++
				}
			}
		}
	}
	if ph != nil {
		ph.Scan += now().Sub(mark).Nanoseconds()
	}
	g.empty = false
	return stats
}

// scanCellGroup streams one inverted list block by block; each block's codes
// are evaluated for every query in the group while the block is cache-hot.
// The per-query distance computation and top-k fold are identical to
// Searcher.scanList (same kernels, same block boundaries, same tombstone
// cursor), which is what makes grouped results bit-equivalent. It returns the
// number of distinct live vectors streamed.
//
//hermes:hotpath
func (g *GroupSearcher) scanCellGroup(l *invList, cs int, dead []uint32, group []cellRef) int {
	n := len(l.ids)
	live := 0
	diBase := 0
	for b0 := 0; b0 < n; b0 += scanBlock {
		bn := n - b0
		if bn > scanBlock {
			bn = scanBlock
		}
		codes := l.codes[b0*cs:]
		ids := l.ids[b0 : b0+bn]
		blockLive := bn
		for _, pr := range group {
			s := g.slots[pr.slot]
			s.kernel.DistanceBatch(codes, bn, g.dist)
			dist := g.dist[:bn]
			tk := s.tk
			worst, full := tk.WorstScore()
			if len(dead) == 0 {
				for i, id := range ids {
					d := dist[i]
					if full && d >= worst {
						continue
					}
					tk.Push(id, d)
					worst, full = tk.WorstScore()
				}
				continue
			}
			// Each query replays the same dead-position cursor over the
			// block; the cursor base advances once per block below.
			di := diBase
			lv := 0
			for i, id := range ids {
				pos := uint32(b0 + i)
				for di < len(dead) && dead[di] < pos {
					di++
				}
				if di < len(dead) && dead[di] == pos {
					di++
					continue
				}
				lv++
				d := dist[i]
				if full && d >= worst {
					continue
				}
				tk.Push(id, d)
				worst, full = tk.WorstScore()
			}
			blockLive = lv
		}
		if len(dead) != 0 {
			end := uint32(b0 + bn)
			for diBase < len(dead) && dead[diBase] < end {
				diBase++
			}
		}
		live += blockLive
	}
	return live
}

// AppendResults drains query i's neighbors (best first) into dst and returns
// it. Destructive: a slot can be drained once per Search. Out-of-range
// indexes and searches that returned early yield dst unchanged. After
// SearchPhased the drain time folds into the batch's merge phase; on the
// untraced path g.ph is nil and the clock is never read.
func (g *GroupSearcher) AppendResults(i int, dst []vec.Neighbor) []vec.Neighbor {
	if g.empty || i < 0 || i >= g.n {
		return dst
	}
	if g.ph != nil {
		mark := now()
		dst = g.slots[i].tk.AppendResults(dst)
		g.ph.Merge += now().Sub(mark).Nanoseconds()
		return dst
	}
	return g.slots[i].tk.AppendResults(dst)
}

// QueryStats reports query i's work in sequential-path terms: cells it
// probed and live vectors it logically scanned (shared streams count once
// per query here, matching what Searcher would have reported).
func (g *GroupSearcher) QueryStats(i int) SearchStats {
	if g.empty || i < 0 || i >= g.n {
		return SearchStats{}
	}
	s := g.slots[i]
	return SearchStats{CellsProbed: len(s.cells), VectorsScanned: s.scanned}
}

// CostStats reports query i's slice of the batch's cost ledger — its probe
// cells, how many of those streams it shared, and its exact
// exclusive/amortized split of the distinct codes streamed (see the CostStats
// type). Zero for out-of-range indexes and searches that returned early.
func (g *GroupSearcher) CostStats(i int) CostStats {
	if g.empty || i < 0 || i >= g.n {
		return CostStats{}
	}
	s := g.slots[i]
	return CostStats{
		CellsProbed:    len(s.cells),
		SharedCells:    s.shared,
		CodesExclusive: s.exclusive,
		CodesAmortized: s.amortized,
	}
}

// SearchGroup executes all queries as one grouped batch with shared per-cell
// scans, returning each query's neighbors (best first) and the batch's work
// stats. Results are identical to running Search per query (see DESIGN.md
// §13 for the tie-at-k caveat). It draws a GroupSearcher from the index's
// internal pool, so steady-state batches allocate only the returned slices.
func (ix *Index) SearchGroup(queries [][]float32, k, nProbe int) ([][]vec.Neighbor, GroupStats) {
	out := make([][]vec.Neighbor, len(queries))
	if !ix.trained || k <= 0 || ix.count == 0 || len(queries) == 0 {
		return out, GroupStats{Queries: len(queries)}
	}
	g := ix.getGroupSearcher()
	stats := g.Search(queries, k, nProbe)
	for i := range queries {
		out[i] = g.AppendResults(i, nil)
	}
	ix.groupPool.Put(g)
	return out, stats
}

// SearchGroupCosted is SearchGroup plus the per-query cost ledger and — when
// phased — the batch-level phase breakdown. phased=false keeps the untraced
// contract (no clock reads, zero PhaseNanos); phased=true runs the batch
// through SearchPhased, so the returned PhaseNanos carries the shared
// select/scan wall time and the summed drain (merge) time. Results are
// identical either way: phasing only adds timestamps around the same code.
func (ix *Index) SearchGroupCosted(queries [][]float32, k, nProbe int, phased bool) ([][]vec.Neighbor, GroupStats, PhaseNanos, []CostStats) {
	out := make([][]vec.Neighbor, len(queries))
	costs := make([]CostStats, len(queries))
	if !ix.trained || k <= 0 || ix.count == 0 || len(queries) == 0 {
		return out, GroupStats{Queries: len(queries)}, PhaseNanos{}, costs
	}
	g := ix.getGroupSearcher()
	var stats GroupStats
	if phased {
		stats = g.SearchPhased(queries, k, nProbe)
	} else {
		stats = g.Search(queries, k, nProbe)
	}
	for i := range queries {
		out[i] = g.AppendResults(i, nil)
		costs[i] = g.CostStats(i)
	}
	// Phases is complete only after every slot has been drained: the merge
	// component accumulates in AppendResults.
	ph := g.Phases()
	ix.groupPool.Put(g)
	return out, stats, ph, costs
}

// PredictCells appends the nProbe cells q would probe (ascending centroid
// distance) to dst[:0] and returns it. This is the batcher's grouping
// signal: it is the exact probe selection Search will perform, so two
// queries with overlapping predictions will share cell streams when
// executed as a group. Untrained indexes and dimension mismatches predict
// nothing.
func (ix *Index) PredictCells(dst []int32, q []float32, nProbe int) []int32 {
	if !ix.trained || len(q) != ix.cfg.Dim {
		return dst[:0]
	}
	if nProbe <= 0 {
		nProbe = 1
	}
	if nProbe > ix.cfg.NList {
		nProbe = ix.cfg.NList
	}
	heap := make([]cellDist, 0, nProbe)
	_, dst = selectProbeCells(ix, q, nProbe, heap, dst)
	return dst
}
