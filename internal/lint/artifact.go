package lint

import (
	"fmt"
	"os"
	"path/filepath"
)

// Artifact is a generated per-package file that an analyzer diffs against
// the working tree — the framework's generated-artifact mode. Analyzers stay
// read-only; regeneration is an explicit driver action (e.g. hermes-lint
// -update-wirelock), so a schema change is always a reviewed commit, never a
// silent side effect of running the linter.
type Artifact struct {
	// Name is the artifact ID (matches the owning analyzer where there is
	// one).
	Name string
	// Filename is the per-package file the artifact lives in.
	Filename string
	// Doc is a one-line description.
	Doc string
	// Generate renders the artifact for pkg, or nil when the artifact does
	// not apply to this package. escape carries the compiler diagnostics for
	// artifacts derived from them (alloc.lock); wire.lock ignores it, and it
	// is nil when the driver did not run the escape runner.
	Generate func(pkg *Package, escape *EscapeDiags) []byte
}

// AllArtifacts returns every registered artifact generator in stable order.
func AllArtifacts() []*Artifact {
	return []*Artifact{WireLockArtifact, AllocLockArtifact}
}

// WireLockArtifact regenerates wire.lock for packages with //hermes:wire
// structs (see the wirelock analyzer).
var WireLockArtifact = &Artifact{
	Name:     "wirelock",
	Filename: WireLockFile,
	Doc:      "append-only gob wire schema of //hermes:wire structs",
	Generate: func(pkg *Package, _ *EscapeDiags) []byte { return GenerateWireLock(pkg) },
}

// Update writes the artifact for every applicable package and returns the
// paths written.
func (ar *Artifact) Update(pkgs []*Package, escape *EscapeDiags) ([]string, error) {
	var written []string
	for _, pkg := range pkgs {
		data := ar.Generate(pkg, escape)
		if data == nil {
			continue
		}
		path := filepath.Join(pkg.Dir, ar.Filename)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return written, fmt.Errorf("lint: writing %s: %w", path, err)
		}
		written = append(written, path)
	}
	return written, nil
}
