package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is one completed query as kept by the flight Recorder: enough
// to answer "what did this query do and where did its time go" after the
// fact, without holding the live *Trace.
type QueryRecord struct {
	TraceID   uint64
	BatchID   uint64        // grouped-batch identity; 0 for solo queries
	Start     time.Time
	Total     time.Duration // wall time, request start to reply
	Busy      time.Duration // sum of span durations (> Total under overlap)
	Spans     []Span        // per-phase/per-node breakdown, may be nil
	DeepNodes []int         // shards deep-searched
	Scanned   int64         // vectors scanned across all shards
	Cost      QueryCost     // per-query resource attribution ledger
	Err       string        // empty on success
}

// IsBatch reports whether the record is a grouped batch's summary record
// (the batch identity recorded under its own ID, carrying the shared-phase
// waterfall and the batch totals) rather than a member query.
func (r QueryRecord) IsBatch() bool { return r.BatchID != 0 && r.BatchID == r.TraceID }

// PhaseSummary renders the record's spans compactly on one line in start
// order ("sample_scatter=412µs n3.list_scan=1.1ms ..."), or "" without spans.
func (r QueryRecord) PhaseSummary() string {
	if len(r.Spans) == 0 {
		return ""
	}
	spans := append([]Span(nil), r.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	parts := make([]string, len(spans))
	for i, s := range spans {
		parts[i] = fmt.Sprintf("%s=%v", s.Label(), s.Duration)
	}
	return strings.Join(parts, " ")
}

// Waterfall renders the record's spans as the cross-node timing chart.
func (r QueryRecord) Waterfall() string {
	return FormatWaterfall(r.TraceID, r.Spans)
}

// recorderStripes is the lock-stripe count: queries hash to a stripe by
// trace ID, so concurrent recorders on different stripes never contend.
const recorderStripes = 8

type recordRing struct {
	mu   sync.Mutex
	buf  []QueryRecord
	next int
	n    int // valid entries, <= len(buf)
}

func (r *recordRing) add(qr QueryRecord) {
	r.mu.Lock()
	r.buf[r.next] = qr
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

func (r *recordRing) appendAll(dst []QueryRecord) []QueryRecord {
	r.mu.Lock()
	dst = append(dst, r.buf[:r.n]...)
	r.mu.Unlock()
	return dst
}

func (r *recordRing) find(id uint64) (QueryRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Scan newest-first so a reused ID (2^32 wrap) resolves to the latest.
	for i := 0; i < r.n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		if r.buf[idx].TraceID == id {
			return r.buf[idx], true
		}
	}
	return QueryRecord{}, false
}

// Recorder is a fixed-capacity flight recorder of completed queries: a
// mutex-striped ring of the most recent QueryRecords plus a second ring that
// pins slow outliers (Total >= the threshold) so a burst of fast queries
// cannot evict the interesting ones. Memory is bounded at construction —
// capacity+slowCap records, preallocated — and eviction is purely
// ring-oldest-first per stripe. Record is allocation-free (records are
// copied by value into preallocated slots); the read side (Recent, Slow,
// Find, HTTP) allocates freely. All methods are safe for concurrent use and
// no-ops on a nil *Recorder.
type Recorder struct {
	slowNanos atomic.Int64
	stripes   []recordRing
	slow      recordRing
}

// NewRecorder builds a recorder keeping the last `capacity` queries
// (default 256 when <= 0) and pinning queries slower than slowThreshold in
// a separate ring of capacity max(8, capacity/4). slowThreshold <= 0
// disables pinning until SetSlowThreshold.
func NewRecorder(capacity int, slowThreshold time.Duration) *Recorder {
	if capacity <= 0 {
		capacity = 256
	}
	stripes := recorderStripes
	if capacity < stripes {
		stripes = 1
	}
	per := (capacity + stripes - 1) / stripes
	rec := &Recorder{stripes: make([]recordRing, stripes)}
	for i := range rec.stripes {
		rec.stripes[i].buf = make([]QueryRecord, per)
	}
	slowCap := capacity / 4
	if slowCap < 8 {
		slowCap = 8
	}
	rec.slow.buf = make([]QueryRecord, slowCap)
	rec.slowNanos.Store(int64(slowThreshold))
	return rec
}

// SetSlowThreshold changes the pin threshold; <= 0 disables pinning.
func (rec *Recorder) SetSlowThreshold(d time.Duration) {
	if rec == nil {
		return
	}
	rec.slowNanos.Store(int64(d))
}

// SlowThreshold returns the current pin threshold (0 = disabled).
func (rec *Recorder) SlowThreshold() time.Duration {
	if rec == nil {
		return 0
	}
	return time.Duration(rec.slowNanos.Load())
}

// Record stores one completed query. Safe from the serving hot path: one
// stripe mutex, no allocation.
func (rec *Recorder) Record(qr QueryRecord) {
	if rec == nil {
		return
	}
	rec.stripes[qr.TraceID%uint64(len(rec.stripes))].add(qr)
	if t := rec.slowNanos.Load(); t > 0 && int64(qr.Total) >= t {
		rec.slow.add(qr)
	}
}

// Recent returns up to max records, most recently started first.
func (rec *Recorder) Recent(max int) []QueryRecord {
	if rec == nil || max <= 0 {
		return nil
	}
	var all []QueryRecord
	for i := range rec.stripes {
		all = rec.stripes[i].appendAll(all)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	if len(all) > max {
		all = all[:max]
	}
	return all
}

// Slow returns up to max pinned slow queries, slowest first.
func (rec *Recorder) Slow(max int) []QueryRecord {
	if rec == nil || max <= 0 {
		return nil
	}
	all := rec.slow.appendAll(nil)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	if len(all) > max {
		all = all[:max]
	}
	return all
}

// Find looks a trace ID up in both rings (a slow query may have been
// evicted from the recent ring but still be pinned).
func (rec *Recorder) Find(traceID uint64) (QueryRecord, bool) {
	if rec == nil {
		return QueryRecord{}, false
	}
	if qr, ok := rec.stripes[traceID%uint64(len(rec.stripes))].find(traceID); ok {
		return qr, true
	}
	return rec.slow.find(traceID)
}

// Batch collects a grouped batch by its ID: the batch's own summary record
// (the shared-phase waterfall and batch totals, recorded under the batch ID)
// and the member query records that carry the same BatchID, oldest first.
// ok is false when neither the summary nor any member is still retained.
func (rec *Recorder) Batch(batchID uint64) (batch QueryRecord, members []QueryRecord, ok bool) {
	if rec == nil || batchID == 0 {
		return QueryRecord{}, nil, false
	}
	var all []QueryRecord
	for i := range rec.stripes {
		all = rec.stripes[i].appendAll(all)
	}
	all = rec.slow.appendAll(all)
	seen := make(map[uint64]bool, len(all))
	for _, qr := range all {
		if qr.BatchID != batchID || seen[qr.TraceID] {
			continue
		}
		seen[qr.TraceID] = true
		if qr.IsBatch() {
			batch, ok = qr, true
			continue
		}
		members = append(members, qr)
		ok = true
	}
	sort.SliceStable(members, func(i, j int) bool { return members[i].Start.Before(members[j].Start) })
	return batch, members, ok
}

// ServeQueries is the /debug/queries HTTP handler: the recent and pinned
// slow queries as text (default) or JSON (?format=json), ?n=<max> to bound
// the listing, and ?trace=<hex id> for one query's full waterfall.
//
//lint:ignore ctxflow HTTP handler: the response writes are bounded by the owning server's write deadline, and cancellation arrives via r.Context, not a parameter of ours
func (rec *Recorder) ServeQueries(w http.ResponseWriter, r *http.Request) {
	if rec == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	asJSON := q.Get("format") == "json"
	if ts := q.Get("trace"); ts != "" {
		id, err := strconv.ParseUint(strings.TrimPrefix(ts, "0x"), 16, 64)
		if err != nil {
			http.Error(w, "trace must be a hex trace ID: "+err.Error(), http.StatusBadRequest)
			return
		}
		qr, ok := rec.Find(id)
		if !ok {
			http.Error(w, fmt.Sprintf("trace %016x not in recorder", id), http.StatusNotFound)
			return
		}
		if asJSON {
			writeJSON(w, qr)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "start=%s total=%v busy=%v deep=%v scanned=%d err=%q\n",
			qr.Start.Format(time.RFC3339Nano), qr.Total, qr.Busy, qr.DeepNodes, qr.Scanned, qr.Err)
		if !qr.Cost.IsZero() {
			fmt.Fprintf(w, "cost: %s\n", qr.Cost)
		}
		if qr.BatchID != 0 && !qr.IsBatch() {
			fmt.Fprintf(w, "batch: %016x (use ?batch=%016x for the grouped view)\n", qr.BatchID, qr.BatchID)
		}
		fmt.Fprintln(w, qr.Waterfall())
		return
	}
	if bs := q.Get("batch"); bs != "" {
		id, err := strconv.ParseUint(strings.TrimPrefix(bs, "0x"), 16, 64)
		if err != nil {
			http.Error(w, "batch must be a hex batch ID: "+err.Error(), http.StatusBadRequest)
			return
		}
		batch, members, ok := rec.Batch(id)
		if !ok {
			http.Error(w, fmt.Sprintf("batch %016x not in recorder", id), http.StatusNotFound)
			return
		}
		if asJSON {
			writeJSON(w, struct {
				Batch   QueryRecord   `json:"batch"`
				Members []QueryRecord `json:"members"`
			}{batch, members})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "grouped batch %016x: %d member queries\n", id, len(members))
		if batch.TraceID != 0 {
			fmt.Fprintf(w, "batch total=%v busy=%v scanned=%d\n", batch.Total, batch.Busy, batch.Scanned)
			if !batch.Cost.IsZero() {
				fmt.Fprintf(w, "batch cost: %s\n", batch.Cost)
			}
			fmt.Fprintln(w, batch.Waterfall())
		}
		fmt.Fprintln(w, "\nper-query attribution (amortization breakdown):")
		WriteBatchAttribution(w, members)
		return
	}
	n := 32
	if v := q.Get("n"); v != "" {
		if p, err := strconv.Atoi(v); err == nil && p > 0 {
			n = p
		}
	}
	recent, slow := rec.Recent(n), rec.Slow(n)
	if asJSON {
		writeJSON(w, struct {
			SlowThresholdNanos int64         `json:"slow_threshold_nanos"`
			Recent             []QueryRecord `json:"recent"`
			Slow               []QueryRecord `json:"slow"`
		}{int64(rec.SlowThreshold()), recent, slow})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "flight recorder: %d recent, %d pinned slow (threshold %v)\n",
		len(recent), len(slow), rec.SlowThreshold())
	writeRecordList(w, "recent queries (newest first):", recent)
	writeRecordList(w, "pinned slow queries (slowest first):", slow)
	fmt.Fprintln(w, "\nuse ?trace=<id> for one query's waterfall, ?batch=<id> for a grouped batch's attribution, ?format=json for machine output")
}

func writeRecordList(w http.ResponseWriter, title string, recs []QueryRecord) {
	fmt.Fprintln(w, "\n"+title)
	if len(recs) == 0 {
		fmt.Fprintln(w, "  (none)")
		return
	}
	for _, qr := range recs {
		fmt.Fprintf(w, "  %016x total=%-12v busy=%-12v deep=%v scanned=%d", qr.TraceID, qr.Total, qr.Busy, qr.DeepNodes, qr.Scanned)
		if qr.IsBatch() {
			fmt.Fprintf(w, " [batch]")
		} else if qr.BatchID != 0 {
			fmt.Fprintf(w, " batch=%016x", qr.BatchID)
		}
		if !qr.Cost.IsZero() {
			fmt.Fprintf(w, " codes=%d shared=%.0f%%", qr.Cost.Codes(), 100*qr.Cost.SharedFrac())
		}
		if qr.Err != "" {
			fmt.Fprintf(w, " err=%q", qr.Err)
		}
		if s := qr.PhaseSummary(); s != "" {
			fmt.Fprintf(w, "  [%s]", s)
		}
		fmt.Fprintln(w)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop the response writer owns delivery; a client gone mid-encode is not actionable
	enc.Encode(v)
}
