package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/hermes"
	"repro/internal/kvcache"
	"repro/internal/llm"
	"repro/internal/rag"
)

func init() {
	register("ablation-cachehit", AblationCacheHit)
}

// AblationCacheHit stress-tests RAGCache's ideal-hit-rate assumption (the
// paper grants it 100%): a real retrieval stream is replayed through a real
// capacity-bounded LRU of per-document KV tensors, and the measured hit rate
// is fed back into the pipeline model to show how much of RAGCache's benefit
// survives at each cache size.
func AblationCacheHit(sc Scale) ([]*Table, error) {
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: sc.Chunks, Dim: sc.Dim, NumTopics: sc.Shards, Seed: sc.Seed, ZipfS: 1.4,
	})
	if err != nil {
		return nil, err
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: sc.Shards})
	if err != nil {
		return nil, err
	}
	// Retrieval stream: many queries, k docs each — the document IDs that
	// would be prefilled (or served from cache) per stride.
	qs := c.Queries(sc.Queries*8, sc.Seed+5)
	p := hermes.DefaultParams()
	var stream []int64
	for i := 0; i < qs.Vectors.Len(); i++ {
		res, _ := st.Search(qs.Vectors.Row(i), p)
		for _, n := range res {
			stream = append(stream, n.ID)
		}
	}

	// KV sizing: Gemma2-9B per-token KV over 64-token chunks.
	docBytes := kvcache.KVBytes(corpus.DefaultTokensPerChunk, llm.Gemma2_9B.KVBytesPerToken())
	totalBytes := docBytes * int64(sc.Chunks)

	eng, err := gemmaA6000()
	if err != nil {
		return nil, err
	}
	pipelineSpeedup := func(hitRate float64) (float64, error) {
		mono, err := monoRetriever(10e9, 32)
		if err != nil {
			return 0, err
		}
		base := rag.PipelineConfig{
			Batch: 32, InputTokens: 512, OutputTokens: 256, Stride: 16,
			Engine: eng, Encoder: encoder.DefaultLatencyModel, Retriever: mono,
		}
		rb, err := rag.Run(base)
		if err != nil {
			return 0, err
		}
		cached := base
		cached.PrefixCache = true
		cached.CacheHitRate = hitRate
		rc, err := rag.Run(cached)
		if err != nil {
			return 0, err
		}
		return rb.E2E.Seconds() / rc.E2E.Seconds(), nil
	}

	tab := &Table{
		ID:    "ablation-cachehit",
		Title: "RAGCache ideal-hit-rate assumption vs a real KV cache (extension)",
		Header: []string{"cache_capacity_frac", "hit_rate", "evictions",
			"ragcache_speedup_at_rate", "speedup_at_ideal_1.0"},
		Notes: []string{
			fmt.Sprintf("measured LRU over a real retrieval stream (%d accesses, %d docs, %.0f MB KV/doc-chunk)",
				len(stream), sc.Chunks, float64(docBytes)/1e6),
			"speedups from the 10B-token pipeline model; the paper assumes the last column",
		},
	}
	ideal, err := pipelineSpeedup(1.0)
	if err != nil {
		return nil, err
	}
	for _, frac := range []float64{0.01, 0.05, 0.2, 0.5, 1.0} {
		cache, err := kvcache.New(int64(float64(totalBytes) * frac))
		if err != nil {
			return nil, err
		}
		for _, id := range stream {
			cache.Lookup(id, docBytes)
		}
		stats := cache.Stats()
		speedup, err := pipelineSpeedup(stats.HitRate())
		if err != nil {
			return nil, err
		}
		tab.AddRow(frac, stats.HitRate(), stats.Evictions, speedup, ideal)
	}
	return []*Table{tab}, nil
}
