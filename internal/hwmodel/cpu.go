// Package hwmodel provides analytical latency and power models for the CPU
// retrieval platforms the paper measures (Intel Xeon Gold 6448Y, Platinum
// 8380, Silver 4316, and ARM Neoverse-N1), including the DVFS
// frequency/voltage/power relationship exploited by Hermes' load-balancing
// optimization (Section 4.2 and Figure 21).
//
// The paper measures these platforms with RAPL; here each platform is a
// calibrated parametric model. The Gold 6448Y coefficients are anchored to
// the paper's Figure 6 measurement (5.62 s retrieval latency for a 10-billion
// token IVF-SQ8 index at batch 32 on 32 cores); the other platforms are
// scaled by their relative per-core throughput and core counts, preserving
// the ordering of Figure 20 (Platinum 8380 fastest, Neoverse-N1 needing
// larger batches to compete).
package hwmodel

import (
	"fmt"
	"math"
	"time"
)

// CPUSpec is a parametric retrieval-platform model.
type CPUSpec struct {
	Name  string
	Cores int
	// Frequency range (GHz). BaseGHz is the calibration point.
	MinGHz, BaseGHz, MaxGHz float64
	// SecPerBTokQuery is the seconds one core needs at BaseGHz to search
	// one query against a 1-billion-token IVF-SQ8 shard (nProbe 128).
	SecPerBTokQuery float64
	// OverheadSec is the fixed per-wave cost of a batch search (coarse
	// quantizer probing, result aggregation, dispatch) independent of the
	// shard size. It is why naively splitting a datastore over N nodes
	// costs more total energy than one monolithic search.
	OverheadSec float64
	// ActiveWatts is package power at BaseGHz under full load; IdleWatts
	// is package power when idle.
	ActiveWatts, IdleWatts float64
	// VMin and VMax bound the DVFS voltage ladder (volts).
	VMin, VMax float64
}

// Validate reports whether the spec is internally consistent.
func (c CPUSpec) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("hwmodel: %s has no cores", c.Name)
	}
	if !(c.MinGHz > 0 && c.MinGHz <= c.BaseGHz && c.BaseGHz <= c.MaxGHz) {
		return fmt.Errorf("hwmodel: %s frequency range invalid (%v/%v/%v)", c.Name, c.MinGHz, c.BaseGHz, c.MaxGHz)
	}
	if c.SecPerBTokQuery <= 0 || c.ActiveWatts <= c.IdleWatts || c.IdleWatts < 0 {
		return fmt.Errorf("hwmodel: %s power/latency coefficients invalid", c.Name)
	}
	if !(c.VMin > 0 && c.VMin < c.VMax) {
		return fmt.Errorf("hwmodel: %s voltage range invalid", c.Name)
	}
	return nil
}

// Voltage returns the modeled supply voltage at frequency f (GHz): linear
// between VMin at MinGHz and VMax at MaxGHz, clamped.
func (c CPUSpec) Voltage(fGHz float64) float64 {
	if fGHz <= c.MinGHz {
		return c.VMin
	}
	if fGHz >= c.MaxGHz {
		return c.VMax
	}
	t := (fGHz - c.MinGHz) / (c.MaxGHz - c.MinGHz)
	return c.VMin + t*(c.VMax-c.VMin)
}

// Power returns modeled package power (Watts) at frequency f under full
// load: idle power plus dynamic power scaling as f*V(f)^2 relative to the
// base operating point (the classic CMOS DVFS model).
func (c CPUSpec) Power(fGHz float64) float64 {
	base := c.BaseGHz * c.Voltage(c.BaseGHz) * c.Voltage(c.BaseGHz)
	dyn := fGHz * c.Voltage(fGHz) * c.Voltage(fGHz)
	return c.IdleWatts + (c.ActiveWatts-c.IdleWatts)*(dyn/base)
}

// IdlePower returns package power when the node is idle.
func (c CPUSpec) IdlePower() float64 { return c.IdleWatts }

// RetrievalLatency models the wall-clock time for one batch of queries
// against a shard of the given token count at frequency fGHz. FAISS-style
// batch scheduling assigns one query per core, so the batch executes in
// ceil(batch/cores) waves; each wave costs SecPerBTokQuery scaled by shard
// size and inversely by frequency.
func (c CPUSpec) RetrievalLatency(shardTokens int64, batch int, fGHz float64) time.Duration {
	if shardTokens <= 0 || batch <= 0 {
		return 0
	}
	if fGHz <= 0 {
		fGHz = c.BaseGHz
	}
	waves := (batch + c.Cores - 1) / c.Cores
	perWave := c.SecPerBTokQuery*float64(shardTokens)/1e9 + c.OverheadSec
	sec := perWave * float64(waves) * (c.BaseGHz / fGHz)
	return time.Duration(sec * float64(time.Second))
}

// RetrievalEnergy models the Joules consumed by one batch retrieval at
// frequency fGHz: busy time at utilization-scaled package power.
func (c CPUSpec) RetrievalEnergy(shardTokens int64, batch int, fGHz float64) float64 {
	if fGHz <= 0 {
		fGHz = c.BaseGHz
	}
	return c.busyPower(batch, fGHz) * c.RetrievalLatency(shardTokens, batch, fGHz).Seconds()
}

// EnergyInWindow models the Joules a node consumes over a fixed wall-clock
// window during which it performs one batch retrieval at frequency fGHz and
// idles for the remainder. This is the quantity Hermes' DVFS optimization
// minimizes: when the window is set by a slower stage (the slowest shard, or
// LLM inference), running slower trades expensive active Joules for the
// window's unavoidable span. If the busy time exceeds the window the busy
// time is charged in full.
func (c CPUSpec) EnergyInWindow(shardTokens int64, batch int, fGHz float64, window time.Duration) float64 {
	if fGHz <= 0 {
		fGHz = c.BaseGHz
	}
	busy := c.RetrievalLatency(shardTokens, batch, fGHz).Seconds()
	idle := window.Seconds() - busy
	if idle < 0 {
		idle = 0
	}
	return c.busyPower(batch, fGHz)*busy + c.IdleWatts*idle
}

// busyPower scales package power with core utilization: a batch smaller than
// the core count leaves cores idle during the wave, and RAPL-style package
// power grows roughly linearly with active cores between idle and full load.
func (c CPUSpec) busyPower(batch int, fGHz float64) float64 {
	util := c.Utilization(batch)
	return c.IdleWatts + (c.Power(fGHz)-c.IdleWatts)*util
}

// Utilization returns the average fraction of cores busy while a batch is in
// flight: batch/(waves*cores).
func (c CPUSpec) Utilization(batch int) float64 {
	if batch <= 0 {
		return 0
	}
	waves := (batch + c.Cores - 1) / c.Cores
	return float64(batch) / float64(waves*c.Cores)
}

// Throughput returns modeled steady-state queries/second at batch size b and
// frequency fGHz against a shard of the given token count.
func (c CPUSpec) Throughput(shardTokens int64, batch int, fGHz float64) float64 {
	lat := c.RetrievalLatency(shardTokens, batch, fGHz).Seconds()
	if lat <= 0 {
		return 0
	}
	return float64(batch) / lat
}

// FrequencyForLatency returns the lowest frequency (clamped to the DVFS
// range) at which a batch against shardTokens still completes within target.
// This is the knob Hermes' DVFS optimization turns: nodes with light load
// slow down until their latency matches the limiting stage.
func (c CPUSpec) FrequencyForLatency(shardTokens int64, batch int, target time.Duration) float64 {
	if target <= 0 {
		return c.BaseGHz
	}
	atBase := c.RetrievalLatency(shardTokens, batch, c.BaseGHz)
	needed := c.BaseGHz * atBase.Seconds() / target.Seconds()
	return math.Min(math.Max(needed, c.MinGHz), c.MaxGHz)
}

// Paper platforms. SecPerBTokQuery values are relative per-core IVF scan
// speeds consistent with Figure 20's ordering; Gold 6448Y is the calibration
// anchor (5.62 s for 10B tokens / batch 32 / 32 cores — one wave).
var (
	// XeonGold6448Y is the paper's primary retrieval platform (32 cores
	// used, 2.3 GHz guaranteed in the paper's setup).
	XeonGold6448Y = CPUSpec{
		Name: "Intel Xeon Gold 6448Y", Cores: 32,
		MinGHz: 0.8, BaseGHz: 2.3, MaxGHz: 4.1,
		SecPerBTokQuery: 0.557, OverheadSec: 0.05,
		ActiveWatts: 225, IdleWatts: 75,
		VMin: 0.70, VMax: 1.10,
	}
	// XeonPlatinum8380 is the fastest Intel platform in Figure 20.
	XeonPlatinum8380 = CPUSpec{
		Name: "Intel Xeon Platinum 8380", Cores: 40,
		MinGHz: 0.8, BaseGHz: 2.3, MaxGHz: 3.4,
		SecPerBTokQuery: 0.42, OverheadSec: 0.04,
		ActiveWatts: 270, IdleWatts: 90,
		VMin: 0.70, VMax: 1.05,
	}
	// XeonSilver4316 is the slowest Intel platform in Figure 20.
	XeonSilver4316 = CPUSpec{
		Name: "Intel Xeon Silver 4316", Cores: 20,
		MinGHz: 0.8, BaseGHz: 2.3, MaxGHz: 3.4,
		SecPerBTokQuery: 0.80, OverheadSec: 0.06,
		ActiveWatts: 150, IdleWatts: 55,
		VMin: 0.70, VMax: 1.05,
	}
	// NeoverseN1 is the ARM platform: slower per core but with many more
	// cores, so large batches recover throughput (Figure 20).
	NeoverseN1 = CPUSpec{
		Name: "Ampere Neoverse-N1", Cores: 80,
		MinGHz: 1.0, BaseGHz: 3.0, MaxGHz: 3.0,
		SecPerBTokQuery: 1.70, OverheadSec: 0.08,
		ActiveWatts: 180, IdleWatts: 60,
		VMin: 0.75, VMax: 1.00,
	}
)

// Platforms lists all modeled CPU platforms.
func Platforms() []CPUSpec {
	return []CPUSpec{XeonGold6448Y, XeonPlatinum8380, XeonSilver4316, NeoverseN1}
}

// PlatformByName looks a platform up by its Name field.
func PlatformByName(name string) (CPUSpec, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return CPUSpec{}, fmt.Errorf("hwmodel: unknown platform %q", name)
}
