package hermes

import (
	"testing"
	"time"
)

// TestPublicAPIEndToEnd exercises the full public surface the way a
// downstream user would: generate a corpus, build the disaggregated store,
// search it hierarchically, check accuracy against exact ground truth, and
// serve it over the distributed layer.
func TestPublicAPIEndToEnd(t *testing.T) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 1200, Dim: 16, NumTopics: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(c.Vectors, BuildOptions{NumShards: 6})
	if err != nil {
		t.Fatal(err)
	}
	ref := NewFlatIndex(16)
	ref.AddBatch(0, c.Vectors)
	qs := c.Queries(20, 2)
	truth := ref.GroundTruth(qs.Vectors, 5)

	var ndcg float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		res, stats := st.Search(qs.Vectors.Row(i), DefaultParams())
		ids := make([]int64, len(res))
		for j, n := range res {
			ids[j] = n.ID
		}
		ndcg += NDCGAtK(ids, truth[i], 5)
		if stats.SampledShards != 6 {
			t.Fatalf("sampled %d shards", stats.SampledShards)
		}
	}
	if ndcg/20 < 0.9 {
		t.Fatalf("public API NDCG = %v", ndcg/20)
	}

	// Distributed serving round trip.
	cluster, err := LaunchLocalCluster(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	co, err := DialCluster(cluster.Addrs(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	res, err := co.Search(qs.Vectors.Row(0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) == 0 {
		t.Fatal("distributed search returned nothing")
	}
}

func TestPublicAPIChunkStoreAndEncoder(t *testing.T) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 100, Dim: 8, NumTopics: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	store := NewChunkStore(c)
	txt, err := store.Get(5)
	if err != nil || txt == "" {
		t.Fatalf("chunk fetch failed: %v %q", err, txt)
	}
	enc := NewEncoder(8)
	v := enc.Encode(txt)
	if len(v) != 8 {
		t.Fatalf("encoded dim %d", len(v))
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 23 {
		t.Fatalf("expected 23 experiments, got %d", len(ids))
	}
	tabs, err := RunExperiment("fig16", SmallExperimentScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
		t.Fatal("experiment produced no data")
	}
}

func TestPublicAPIStridedGeneration(t *testing.T) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 500, Dim: 8, NumTopics: 3, Seed: 7, TokensPerChunk: 24})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := BuildTextStore(c, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	session, err := NewStridingSession(StridingConfig{Text: ts, Stride: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := session.Generate(TopicQueryText(1, 6, 2), 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strides) != 3 {
		t.Fatalf("strides = %d", len(res.Strides))
	}
	if res.Output == "" {
		t.Fatal("no output generated")
	}
}

func TestPublicAPIRerankAndLoad(t *testing.T) {
	m := NewMatrix(3, 2)
	copy(m.Row(0), []float32{0, 0})
	copy(m.Row(1), []float32{1, 0})
	copy(m.Row(2), []float32{5, 5})
	rr := NewReranker(RerankL2, m)
	ranked := rr.Rerank([]float32{0.9, 0}, []Neighbor{{ID: 0}, {ID: 1}, {ID: 2}})
	if ranked[0].ID != 1 {
		t.Fatalf("rerank top = %d", ranked[0].ID)
	}
	rep, err := RunLoad(LoadConfig{TargetQPS: 2000, Queries: 20, Concurrency: 2, Seed: 3},
		func(int) error { return nil })
	if err != nil || rep.Completed != 20 {
		t.Fatalf("load run: %v %+v", err, rep)
	}
}

func TestPublicAPIMutation(t *testing.T) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 400, Dim: 8, NumTopics: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(c.Vectors, BuildOptions{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Add(9999, c.Vectors.Row(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Remove(9999); !ok {
		t.Fatal("remove of ingested doc failed")
	}
	st.Compact()
	if st.Len() != 400 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	c, err := GenerateCorpus(CorpusSpec{NumChunks: 600, Dim: 8, NumTopics: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildNaiveSplit(c.Vectors, 3, 8); err != nil {
		t.Fatal(err)
	}
	mono, err := BuildMonolithic(c.Vectors, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Len() != 600 {
		t.Fatalf("monolithic len %d", mono.Len())
	}
}
