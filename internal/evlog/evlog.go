// Package evlog is the serving path's structured event log: a stdlib-only,
// leveled key-value logger backed by a preallocated ring, built for the
// lifecycle edges that metrics aggregate away — a connection being poisoned,
// a deadline hit, a node redial, a batcher drain. Counters tell you *how
// often*; the event log tells you *which node, when, with what error*.
//
// Design constraints, in order:
//
//   - Nil safety. A nil *Log swallows everything, so instrumented code emits
//     unconditionally — the same contract as internal/telemetry handles. The
//     disabled path adds zero allocations, which keeps //hermes:hotpath
//     functions clean as long as the Emit call is gated on the handle.
//   - Bounded memory. Events land in a ring preallocated at New; an event
//     carries at most MaxFields inline fields and no pointers the caller
//     retains, so emitting never grows the heap in steady state.
//   - Bounded volume. A per-name token bucket drops repetitive events (a
//     flapping node would otherwise own the ring) and counts the drops,
//     which are themselves observable via Stats.
//
// Emission paths count as I/O to hermes-lint (Emit carries //hermes:io), so
// holding a mutex across an Emit is flagged by lockheldio exactly like a
// log.Printf would be.
package evlog

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// now is the injectable clock seam; tests freeze it to pin rate-limiter and
// timestamp behavior.
var now = time.Now

// Level orders event severity.
type Level uint8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "LEVEL(" + strconv.Itoa(int(l)) + ")"
	}
}

// Field kinds. Fields are flat tagged unions rather than interface{} values
// so building one never allocates.
const (
	kindInt uint8 = iota
	kindStr
	kindDur
	kindFloat
)

// Field is one key-value pair attached to an event.
type Field struct {
	Key  string
	Kind uint8
	Num  int64
	Str  string
}

// Int attaches an integer field.
func Int(key string, v int64) Field { return Field{Key: key, Kind: kindInt, Num: v} }

// Str attaches a string field.
func Str(key, v string) Field { return Field{Key: key, Kind: kindStr, Str: v} }

// Dur attaches a duration field.
func Dur(key string, d time.Duration) Field { return Field{Key: key, Kind: kindDur, Num: int64(d)} }

// Float attaches a float field.
func Float(key string, v float64) Field {
	return Field{Key: key, Kind: kindFloat, Num: int64(math.Float64bits(v))}
}

// Err attaches an error under the key "err". Calling Error() may allocate,
// but only failure paths build error fields.
func Err(err error) Field {
	if err == nil {
		return Field{Key: "err", Kind: kindStr}
	}
	return Field{Key: "err", Kind: kindStr, Str: err.Error()}
}

// Value renders the field's value as a string.
func (f Field) Value() string {
	switch f.Kind {
	case kindInt:
		return strconv.FormatInt(f.Num, 10)
	case kindDur:
		return time.Duration(f.Num).String()
	case kindFloat:
		return strconv.FormatFloat(math.Float64frombits(uint64(f.Num)), 'g', -1, 64)
	default:
		return f.Str
	}
}

// MaxFields is the inline field capacity of an event; Emit truncates beyond
// it. Six covers every serving-path site (name encodes the edge; fields
// carry shard, address, duration, error).
const MaxFields = 6

// Event is one recorded occurrence. Events are plain values: the ring holds
// them by value and Events returns copies, so readers never race writers.
type Event struct {
	Seq    uint64
	Time   time.Time
	Level  Level
	Name   string
	N      int // fields in use
	Fields [MaxFields]Field
}

// String renders the event on one line:
// `2026-01-02T15:04:05.000Z WARN  conn.poisoned shard=2 err="read timeout"`.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Time.UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	lv := e.Level.String()
	b.WriteString(lv)
	for i := len(lv); i < 5; i++ {
		b.WriteByte(' ')
	}
	b.WriteByte(' ')
	b.WriteString(e.Name)
	for i := 0; i < e.N; i++ {
		f := e.Fields[i]
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		if f.Kind == kindStr {
			b.WriteString(strconv.Quote(f.Str))
		} else {
			b.WriteString(f.Value())
		}
	}
	return b.String()
}

// Config sizes a Log. The zero value is usable: 256-slot ring, Debug level,
// no rate limiting.
type Config struct {
	// Capacity is the ring size; <= 0 means 256.
	Capacity int
	// MinLevel drops events below it before rate limiting.
	MinLevel Level
	// RatePerSec is the per-event-name sustained emission rate; events over
	// it are dropped and counted. <= 0 disables limiting.
	RatePerSec float64
	// Burst is the token-bucket depth per name; <= 0 means
	// max(1, RatePerSec).
	Burst int
}

// Log is a concurrency-safe ring of recent events. All methods are no-ops
// on a nil receiver.
type Log struct {
	min   Level
	rate  float64
	burst float64

	mu        sync.Mutex
	ring      []Event
	seq       uint64
	buckets   map[string]*bucket
	emitted   uint64
	dropped   uint64
	droppedBy map[string]uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// New returns a Log sized by cfg.
func New(cfg Config) *Log {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	burst := float64(cfg.Burst)
	if burst <= 0 {
		burst = math.Max(1, cfg.RatePerSec)
	}
	return &Log{
		min:       cfg.MinLevel,
		rate:      cfg.RatePerSec,
		burst:     burst,
		ring:      make([]Event, capacity),
		buckets:   make(map[string]*bucket),
		droppedBy: make(map[string]uint64),
	}
}

// Emit records one event. The variadic fields never escape — they are
// copied by value into a preallocated ring slot — so a call whose Field
// arguments are built from the constructors above does not allocate, on nil
// and non-nil logs alike.
//
// Emit is the serving path's logging entry point, so the disabled/filtered
// fast path carries the //hermes:hotpath contract: no clock read, no lock,
// no allocation until the level gate passes. The slow path (clock, token
// bucket, ring write) lives in record, reached only through the gate.
//
//hermes:io
//hermes:hotpath
func (l *Log) Emit(level Level, name string, fields ...Field) {
	if l != nil && level >= l.min {
		l.record(level, name, fields)
	}
}

// record is Emit's slow path: stamp, rate-limit, and copy the event into
// the ring. Callers have already passed the nil/level gate.
func (l *Log) record(level Level, name string, fields []Field) {
	t := now()
	l.mu.Lock()
	if l.rate > 0 && !l.allowLocked(name, t) {
		l.dropped++
		l.droppedBy[name]++
		l.mu.Unlock()
		return
	}
	l.seq++
	l.emitted++
	ev := &l.ring[(l.seq-1)%uint64(len(l.ring))]
	ev.Seq = l.seq
	ev.Time = t
	ev.Level = level
	ev.Name = name
	n := len(fields)
	if n > MaxFields {
		n = MaxFields
	}
	ev.N = n
	copy(ev.Fields[:n], fields[:n])
	for i := n; i < MaxFields; i++ {
		ev.Fields[i] = Field{}
	}
	l.mu.Unlock()
}

// Debug, Info, Warn, and Error are level-pinned Emits.
func (l *Log) Debug(name string, fields ...Field) { l.Emit(LevelDebug, name, fields...) }
func (l *Log) Info(name string, fields ...Field)  { l.Emit(LevelInfo, name, fields...) }
func (l *Log) Warn(name string, fields ...Field)  { l.Emit(LevelWarn, name, fields...) }
func (l *Log) Error(name string, fields ...Field) { l.Emit(LevelError, name, fields...) }

// allowLocked runs the per-name token bucket; callers hold l.mu.
func (l *Log) allowLocked(name string, t time.Time) bool {
	b := l.buckets[name]
	if b == nil {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[name] = b
	}
	b.tokens += t.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = t
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Events returns the retained events, newest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.seq
	if n > uint64(len(l.ring)) {
		n = uint64(len(l.ring))
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, l.ring[(l.seq-1-i)%uint64(len(l.ring))])
	}
	return out
}

// Stats summarizes emission volume.
type Stats struct {
	// Emitted counts events that made it into the ring (including ones
	// since overwritten); Dropped counts events suppressed by the rate
	// limiter.
	Emitted, Dropped uint64
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Emitted: l.emitted, Dropped: l.dropped}
}

// DroppedByName reports per-name rate-limit drops.
func (l *Log) DroppedByName() map[string]uint64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.droppedBy))
	for k, v := range l.droppedBy {
		out[k] = v
	}
	return out
}
