// Command hermes-lint runs the project's custom static-analysis suite
// (see internal/lint) over package patterns and exits non-zero on any
// finding. It is part of the tier-1 verify path (scripts/verify.sh): the
// paper's latency/imbalance/energy claims depend on deterministic,
// race-free, wire-stable code, and these checks machine-enforce the project
// rules that keep it that way.
//
// Usage:
//
//	hermes-lint [flags] [packages...]
//	hermes-lint ./...                      # whole module (default)
//	hermes-lint -only globalrand,errdrop ./internal/...
//	hermes-lint -include-tests ./...       # also analyze in-package _test.go files
//	hermes-lint -json ./... > lint.json    # machine-readable report on stdout
//	hermes-lint -diff lint-report.json ./... # fail only on NEW findings
//	hermes-lint -update-wirelock ./...     # regenerate wire.lock artifacts
//	hermes-lint -update-alloclock ./...    # regenerate alloc.lock artifacts
//	hermes-lint -list                      # describe checks and fact lattices
//	hermes-lint -facts ./...               # dump the cross-package facts
//	hermes-lint -facts -json ./...         # ... as stable JSON
//
// Before any analyzer runs, the driver computes the cross-package fact
// lattices (io, alloc, acquires, blocks, netio, cancel — see internal/
// lint's fact engine) over every module package reached while loading, so
// analyzers like lockheldio, hotpathalloc, lockorder, goroutineleak, and
// ctxflow see through call chains that end at a socket, an allocation, or
// a mutex three packages away.
//
// When the escapeaudit check is selected and a matched package declares
// //hermes:hotpath functions, the driver additionally invokes the go
// compiler (`go build -gcflags=-m=2`, cached by the go tool) to collect
// escape/inlining diagnostics and diffs them against each package's
// committed alloc.lock. Because those diagnostics move between toolchains,
// the pass runs only when `go env GOVERSION` matches the version recorded
// in the lock headers; on mismatch the driver prints a warning to stderr
// and skips escapeaudit rather than hard-blocking contributors on a newer
// toolchain. -update-alloclock always records with the current toolchain.
//
// A baseline file (-baseline) subtracts previously accepted findings,
// matched by (check, file, message); -write-baseline records the current
// findings to bootstrap one. Entries that no longer match anything are
// reported so the baseline shrinks toward empty. -diff is the incremental-
// adoption variant the CI gate uses (scripts/lint-diff.sh): the full
// report is still computed (and emitted with -json), but the exit status
// considers only findings absent from the given committed report, so a new
// analyzer can land with known findings and tighten over time.
//
// Patterns ending in /... walk recursively (testdata, vendor, and hidden
// directories are skipped); any other argument names one package
// directory, which is how the lint fixtures under
// internal/lint/testdata/src/ can be linted directly.
//
// Exit status: 0 clean, 1 findings (with -diff: new findings), 2 usage or
// load error — including parse failures in dependency packages, which
// type-check error recovery would otherwise swallow.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		only          = flag.String("only", "", "comma-separated check IDs to run exclusively")
		skip          = flag.String("skip", "", "comma-separated check IDs to disable")
		list          = flag.Bool("list", false, "list available checks and fact lattices, then exit")
		jsonOut       = flag.Bool("json", false, "write the machine-readable report (or facts dump) to stdout")
		includeTests  = flag.Bool("include-tests", false, "also analyze in-package _test.go files (TestFiles-capable checks only)")
		baselinePath  = flag.String("baseline", "", "baseline file of accepted findings to subtract")
		diffPath      = flag.String("diff", "", "committed report to diff against: report everything, but exit 1 only on findings absent from it")
		writeBaseline = flag.String("write-baseline", "", "write current findings to this baseline file and exit")
		updateWire    = flag.Bool("update-wirelock", false, "regenerate wire.lock artifacts for matched packages and exit")
		updateAlloc   = flag.Bool("update-alloclock", false, "regenerate alloc.lock artifacts for matched packages (runs the compiler) and exit")
		showFacts     = flag.Bool("facts", false, "dump the cross-package fact lattices and lock-order graph, then exit")
		typeWarn      = flag.Bool("typewarnings", false, "print type-check problems encountered while loading")
	)
	flag.Parse()

	if *list {
		fmt.Println("checks:")
		for _, a := range lint.All() {
			fmt.Printf("  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Println("fact lattices:")
		for _, la := range lint.Lattices() {
			fmt.Printf("  %-14s %s\n", la.Name, la.Doc)
		}
		return
	}
	if *baselinePath != "" && *diffPath != "" {
		fatal(fmt.Errorf("hermes-lint: -baseline and -diff are mutually exclusive (both subtract accepted findings)"))
	}

	analyzers, err := lint.Select(*only, *skip)
	if err != nil {
		fatal(err)
	}
	if len(analyzers) == 0 {
		fatal(fmt.Errorf("hermes-lint: -only/-skip selected no checks"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	loader.IncludeTests = *includeTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("hermes-lint: no packages matched %v", patterns))
	}
	// A syntactically broken dependency is a load failure, not a lint
	// finding: type-check recovery would analyze around it and exit 0.
	if errs := loader.HardErrors(); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "hermes-lint: load: %v\n", e)
		}
		os.Exit(2)
	}
	if *typeWarn {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "hermes-lint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
	}

	// Compiler escape/inlining diagnostics, collected once and shared by the
	// escapeaudit pass and the alloc.lock artifact generator. nil when
	// nothing needs them, no package declares a hot path, or the toolchain
	// differs from the recorded lock version (skip-with-warning: diagnostics
	// are toolchain-specific, and a contributor on a newer go should not be
	// hard-blocked by a lock they cannot legitimately regenerate).
	var escape *lint.EscapeDiags
	hotDirs := lint.HotPathDirs(pkgs)
	if (*updateAlloc || hasAnalyzer(analyzers, "escapeaudit")) && len(hotDirs) > 0 {
		runner := lint.NewEscapeRunner(loader.ModuleRoot)
		version, err := runner.GoVersion()
		if err != nil {
			fatal(err)
		}
		skip := false
		if !*updateAlloc {
			for _, locked := range lint.AllocLockGoVersions(hotDirs) {
				if locked != version {
					fmt.Fprintf(os.Stderr, "hermes-lint: skipping escapeaudit: %s recorded with %s, toolchain is %s (regenerate with -update-alloclock on a matching toolchain)\n", lint.AllocLockFile, locked, version)
					skip = true
				}
			}
		}
		if !skip {
			escape, err = runner.Run(hotDirs)
			if err != nil {
				fatal(err)
			}
		}
	}

	if *updateWire || *updateAlloc {
		for _, ar := range lint.AllArtifacts() {
			if ar.Name == "wirelock" && !*updateWire {
				continue
			}
			if ar.Name == "escapeaudit" && !*updateAlloc {
				continue
			}
			written, err := ar.Update(pkgs, escape)
			if err != nil {
				fatal(err)
			}
			for _, path := range written {
				fmt.Printf("hermes-lint: wrote %s\n", path)
			}
		}
		return
	}

	// Facts span every package reached during loading, not just the pattern
	// targets: a lockheldio finding in a target package may hinge on I/O
	// buried in a dependency, and the lock-order graph is module-wide by
	// construction.
	facts := lint.ComputeFacts(loader.Cached())
	if *showFacts {
		dump := facts.Dump(loader.ModuleRoot)
		if *jsonOut {
			data, err := dump.MarshalIndent()
			if err != nil {
				fatal(err)
			}
			if _, err := os.Stdout.Write(data); err != nil {
				fatal(err)
			}
			return
		}
		for _, fn := range dump.IO {
			fmt.Println("io       " + fn)
		}
		for _, fn := range dump.Alloc {
			fmt.Println("alloc    " + fn)
		}
		for _, fn := range dump.Blocks {
			fmt.Println("blocks   " + fn)
		}
		for _, a := range dump.Acquires {
			fmt.Printf("acquires %s -> %v\n", a.Func, a.Mutexes)
		}
		for _, e := range dump.LockEdges {
			via := ""
			if e.Via != "" {
				via = " via " + e.Via
			}
			fmt.Printf("lockedge %s -> %s at %s in %s%s\n", e.From, e.To, e.Pos, e.Func, via)
		}
		return
	}

	findings := lint.RunPackages(pkgs, analyzers, lint.RunOptions{
		Facts:        facts,
		Escape:       escape,
		IncludeTests: *includeTests,
	})

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, loader.ModuleRoot, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "hermes-lint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var absorbed int
		var stale []lint.JSONFinding
		findings, absorbed, stale = base.Filter(findings, loader.ModuleRoot)
		if absorbed > 0 {
			fmt.Fprintf(os.Stderr, "hermes-lint: baseline absorbed %d finding(s)\n", absorbed)
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "hermes-lint: stale baseline entry (fixed? delete it): %s %s: %s\n", e.Check, e.File, e.Msg)
		}
	}

	// -diff gates, it does not filter: the JSON report keeps every current
	// finding (so the archived artifact refreshes each run), while the exit
	// status and the text listing consider only findings the committed
	// report does not already carry.
	gate := findings
	if *diffPath != "" {
		base, err := lint.LoadBaseline(*diffPath)
		if err != nil {
			fatal(err)
		}
		var absorbed int
		gate, absorbed, _ = base.Filter(findings, loader.ModuleRoot)
		if absorbed > 0 {
			fmt.Fprintf(os.Stderr, "hermes-lint: diff base %s absorbed %d finding(s)\n", *diffPath, absorbed)
		}
	}

	if *jsonOut {
		report := lint.NewReport(loader.ModulePath, loader.ModuleRoot, pkgs, analyzers, findings)
		data, err := report.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
	} else {
		cwd, _ := os.Getwd()
		for _, f := range gate {
			pos := f.Pos
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
					pos.Filename = rel
				}
			}
			fmt.Printf("%s: %s (%s)\n", pos, f.Msg, f.Check)
		}
	}
	if len(gate) > 0 {
		what := "finding(s)"
		if *diffPath != "" {
			what = "new finding(s)"
		}
		fmt.Fprintf(os.Stderr, "hermes-lint: %d %s in %d package(s)\n", len(gate), what, len(pkgs))
		os.Exit(1)
	}
}

func hasAnalyzer(analyzers []*lint.Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
