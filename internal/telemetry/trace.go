package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request-scoped span collection. The coordinator mints a
// Trace per query, threads its ID over the wire to shard nodes (a new,
// backward-compatible field on the distsearch request envelope), and records
// one span per serving phase (sample scatter, ranking, deep gather, rerank,
// generation). A nil *Trace is the disabled state: every method no-ops, so
// the serving path is instrumented unconditionally and pays nothing when
// tracing is off.
type Trace struct {
	id uint64

	mu    sync.Mutex
	spans []Span
}

// Span is one completed phase of a traced request.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

var (
	traceSeq  atomic.Uint64
	traceOnce sync.Once
	traceBase uint64
)

// NewTrace mints a trace with a process-unique ID: the high 32 bits carry
// start-time entropy (the low, fast-varying bits of the wall clock at first
// use, distinguishing processes), the low 32 bits a per-process sequence —
// IDs repeat only after 2^32 traces in one process, so distinct in-flight
// queries in a long-lived coordinator never share an ID.
func NewTrace() *Trace {
	traceOnce.Do(func() {
		traceBase = uint64(now().UnixNano()) << 32
	})
	return &Trace{id: traceBase | (traceSeq.Add(1) & (1<<32 - 1))}
}

// ID returns the trace identifier, or 0 for a nil (disabled) trace — the
// zero value is what untraced wire requests carry.
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// StartSpan opens a span and returns the closure that completes it. Typical
// use: done := tr.StartSpan("deep_gather"); ...; done(). Safe for
// concurrent spans on one trace.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := now()
	return func() {
		d := now().Sub(start)
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d})
		t.mu.Unlock()
	}
}

// Spans returns the completed spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Durations returns total recorded time per span name.
func (t *Trace) Durations() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range t.Spans() {
		out[s.Name] += s.Duration
	}
	return out
}

// Breakdown renders the per-phase timing of the trace on one line, spans in
// start order: "trace 01c2a3f400000001: sample_scatter=412µs ... total=2ms".
func (t *Trace) Breakdown() string {
	if t == nil {
		return "trace <disabled>"
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	var b strings.Builder
	fmt.Fprintf(&b, "trace %016x:", t.id)
	var total time.Duration
	for _, s := range spans {
		fmt.Fprintf(&b, " %s=%v", s.Name, s.Duration)
		total += s.Duration
	}
	fmt.Fprintf(&b, " total=%v", total)
	return b.String()
}
