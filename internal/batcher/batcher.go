// Package batcher is the serving front-end that turns individual query
// arrivals into the batches everything downstream is optimized for. The
// paper's systems are evaluated at fixed batch sizes (32-256) because FAISS
// scan throughput, GPU prefill, and Hermes' per-node deep loads all amortize
// across a batch; a real deployment gets single queries and must form those
// batches itself. The batcher groups arrivals until either MaxBatch queries
// are waiting or MaxWait has elapsed since the first, trading a bounded
// queueing delay for batch efficiency.
//
// With a predictor wired (Config.Predict), the flush becomes a grouping
// scheduler instead of a blind FIFO take: each pending query carries the
// (shard, cell) keys it is expected to probe, the flusher packs queries that
// co-probe the seed's cells into the same batch, and a query with no overlap
// may be held back up to Config.GroupSlack — within its MaxWait bound — to
// ride with a better-matched cohort. Grouped batches fed to a shared-scan
// processor (hermes.Store.SearchGrouped, or grouped distsearch requests)
// stream each IVF cell once for all co-probing queries, which is where the
// grouped-vs-FIFO throughput win comes from (DESIGN.md §13).
package batcher

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/evlog"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// now is the injectable clock seam for arrival stamps and slack-window
// decisions; tests swap it to make holdback choices deterministic.
var now = time.Now

// ProcessFunc executes one batch and returns per-query results,
// index-aligned with the input. distsearch.Coordinator.SearchBatch wrapped
// in a closure is the canonical implementation.
type ProcessFunc func(queries [][]float32) ([][]vec.Neighbor, error)

// ProcessBatchFunc is ProcessFunc plus batch identity: the batcher mints one
// telemetry trace ID per flush and hands it down, so the processor can thread
// the same identity through wire requests, stitched waterfalls, and every
// member query's flight-recorder record (telemetry.NewTraceWithID turns it
// into the batch trace). Canonical implementation: a closure over
// distsearch.Coordinator.SearchBatchTraced.
type ProcessBatchFunc func(batchID uint64, queries [][]float32) ([][]vec.Neighbor, error)

// PredictFunc returns the grouping keys of one query: opaque identifiers of
// the index regions (canonically shard<<32|cell, see hermes.Store
// PredictCells) the query is expected to probe. Keys may arrive in any order
// and may repeat; the batcher sorts and dedups them once at admission. The
// same signal keys the coming disk tier's cache, so predictions should be
// stable for a given query.
type PredictFunc func(q []float32) []uint64

// Config sizes the batcher.
type Config struct {
	// MaxBatch flushes as soon as this many queries are waiting.
	MaxBatch int
	// MaxWait flushes a partial batch this long after its first arrival.
	MaxWait time.Duration
	// Process executes flushed batches.
	Process ProcessFunc
	// ProcessBatch, when non-nil, executes flushed batches with a minted
	// batch identity and takes precedence over Process. Exactly one of the
	// two must be set.
	ProcessBatch ProcessBatchFunc
	// Predict, when non-nil, enables grouped scheduling: flushes pack
	// queries whose predicted cells overlap the oldest pending query's.
	// Nil keeps the original FIFO flush.
	Predict PredictFunc
	// GroupSlack is the SLO slack window of the grouping scheduler: a
	// pending query with no predicted overlap with the current seed may sit
	// out a flush until it has waited this long. Clamped to MaxWait (every
	// query still flushes within MaxWait of its own arrival); zero disables
	// holdback, so grouped flushes take everything FIFO would. Ignored
	// without Predict.
	GroupSlack time.Duration
	// Telemetry, when non-nil, receives the live queue-depth gauge, the
	// batch-size histogram, and the grouping histograms/counters
	// (hermes_batcher_*). Nil disables instrumentation.
	Telemetry *telemetry.Registry
	// Events, when non-nil, records lifecycle edges (the Close-time drain
	// of a partial batch). Nil disables event recording at zero cost.
	Events *evlog.Log
}

// Batcher groups queries into batches. Safe for concurrent Search calls.
type Batcher struct {
	cfg     Config
	mu      sync.Mutex
	pending []*request
	timer   *time.Timer
	closed  bool
	// timerFlushes counts armed wait timers whose flushTimer callback has
	// not finished: time.AfterFunc runs the callback on its own goroutine,
	// and Timer.Stop does not wait for a callback already in flight. Close
	// drains this before returning so no flush (and no cfg.Process call)
	// outlives it.
	timerFlushes sync.WaitGroup

	flushes, queriesServed, holdbacks int64

	queueDepth     *telemetry.Gauge
	batchSize      *telemetry.Histogram
	groupSize      *telemetry.Histogram
	groupOverlap   *telemetry.Histogram
	groupHoldbacks *telemetry.Counter
}

type request struct {
	query   []float32
	cells   []uint64 // sorted, deduped predicted keys; nil without Predict
	arrived time.Time
	done    chan response
}

type response struct {
	neighbors []vec.Neighbor
	err       error
}

// New validates the configuration and returns a ready batcher.
func New(cfg Config) (*Batcher, error) {
	if cfg.MaxBatch <= 0 {
		return nil, fmt.Errorf("batcher: MaxBatch must be positive")
	}
	if cfg.MaxWait <= 0 {
		return nil, fmt.Errorf("batcher: MaxWait must be positive")
	}
	if cfg.Process == nil && cfg.ProcessBatch == nil {
		return nil, fmt.Errorf("batcher: Process or ProcessBatch is required")
	}
	if cfg.GroupSlack < 0 {
		cfg.GroupSlack = 0
	}
	if cfg.GroupSlack > cfg.MaxWait {
		// A hold past MaxWait would break the batcher's latency contract.
		cfg.GroupSlack = cfg.MaxWait
	}
	return &Batcher{
		cfg: cfg,
		//lint:ignore metricname queue depth is a resident count, not a flow or a unit-bearing quantity
		queueDepth: cfg.Telemetry.Gauge("hermes_batcher_queue_depth",
			"Queries waiting for their batch to flush."),
		//lint:ignore metricname batch size is a dimensionless query count per flush
		batchSize: cfg.Telemetry.Histogram("hermes_batcher_batch_size",
			"Queries per flushed batch.", telemetry.DefSizeBuckets),
		//lint:ignore metricname group size is a dimensionless query count per grouped flush
		groupSize: cfg.Telemetry.Histogram("hermes_batcher_group_size",
			"Queries per grouped flush sharing predicted cells with the seed.", telemetry.DefSizeBuckets),
		//lint:ignore metricname overlap is a dimensionless shared-key count
		groupOverlap: cfg.Telemetry.Histogram("hermes_batcher_group_overlap",
			"Predicted-cell overlap between each flushed query and its batch seed.", telemetry.DefSizeBuckets),
		groupHoldbacks: cfg.Telemetry.Counter("hermes_batcher_group_holdbacks_total",
			"Queries held past a flush inside their slack window awaiting overlap."),
	}, nil
}

// Search enqueues a query and blocks until its batch completes.
func (b *Batcher) Search(q []float32) ([]vec.Neighbor, error) {
	req := &request{query: q, done: make(chan response, 1)}
	if b.cfg.Predict != nil {
		// Predict outside the lock: it may scan centroids.
		req.cells = normalizeKeys(b.cfg.Predict(q))
		req.arrived = now()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("batcher: closed")
	}
	b.pending = append(b.pending, req)
	b.queueDepth.Set(float64(len(b.pending)))
	switch {
	case len(b.pending) >= b.cfg.MaxBatch:
		batch := b.takeLocked(false)
		b.mu.Unlock()
		b.flush(batch)
	case len(b.pending) == 1 && b.timer == nil:
		// First arrival arms the wait timer. The Add is balanced by
		// flushTimer when the callback runs, or by takeLocked when a
		// successful Stop proves it never will.
		b.armTimerLocked(b.cfg.MaxWait)
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	resp := <-req.done
	return resp.neighbors, resp.err
}

// normalizeKeys sorts and dedups a prediction in place so overlap counting
// is a linear merge.
func normalizeKeys(keys []uint64) []uint64 {
	if len(keys) < 2 {
		return keys
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w := 1
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[w-1] {
			keys[w] = keys[i]
			w++
		}
	}
	return keys[:w]
}

// keyOverlap counts keys common to two sorted deduped sets.
func keyOverlap(a, b []uint64) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// armTimerLocked arms the wait timer for d from now; callers hold b.mu.
func (b *Batcher) armTimerLocked(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b.timerFlushes.Add(1)
	b.timer = time.AfterFunc(d, b.flushTimer)
}

// takeLocked detaches the next batch; callers hold b.mu. FIFO mode (no
// predictor) and all=true (Close's final drain) take everything; grouped
// mode selects by predicted overlap and may leave held-back queries
// pending, in which case the wait timer is re-armed for the new oldest
// query's own MaxWait deadline. The queue-depth gauge reflects what
// actually remains — a grouped partial take must not report an empty queue.
func (b *Batcher) takeLocked(all bool) []*request {
	var batch []*request
	if all || b.cfg.Predict == nil || len(b.pending) <= 1 {
		batch = b.pending
		b.pending = nil
	} else {
		batch = b.selectGroupLocked()
	}
	b.queueDepth.Set(float64(len(b.pending)))
	if b.timer != nil {
		if b.timer.Stop() {
			// Stopped before firing: the callback never runs, so settle
			// its Add here. A false return means flushTimer is already
			// running (or queued) and settles it itself.
			b.timerFlushes.Done()
		}
		b.timer = nil
	}
	if len(b.pending) > 0 && !b.closed {
		// Held-back queries keep their own latency bound: the re-armed
		// timer fires at the new oldest query's arrival + MaxWait.
		b.armTimerLocked(b.pending[0].arrived.Add(b.cfg.MaxWait).Sub(now()))
	}
	return batch
}

// selectGroupLocked is the grouping scheduler's take: the oldest pending
// query seeds the batch (so no query starves — a held query eventually
// becomes the seed), every query whose predicted cells overlap the seed's
// joins in descending overlap order (FIFO on ties), and non-overlapping
// queries join only once they have waited GroupSlack. Capped at MaxBatch;
// the remainder stays pending. Callers hold b.mu.
func (b *Batcher) selectGroupLocked() []*request {
	pending := b.pending
	seed := pending[0]
	overlaps := make([]int, len(pending))
	idxs := make([]int, 0, len(pending)-1)
	for i := 1; i < len(pending); i++ {
		overlaps[i] = keyOverlap(seed.cells, pending[i].cells)
		idxs = append(idxs, i)
	}
	sort.SliceStable(idxs, func(a, c int) bool { return overlaps[idxs[a]] > overlaps[idxs[c]] })

	taken := make([]*request, 0, b.cfg.MaxBatch)
	taken = append(taken, seed)
	takenMark := make([]bool, len(pending))
	takenMark[0] = true
	cut := now()
	held := int64(0)
	grouped := 1 // queries sharing cells with the seed, incl. the seed
	overlapSum := 0
	for _, i := range idxs {
		if len(taken) >= b.cfg.MaxBatch {
			break
		}
		r := pending[i]
		if overlaps[i] > 0 || b.cfg.GroupSlack <= 0 || cut.Sub(r.arrived) >= b.cfg.GroupSlack {
			taken = append(taken, r)
			takenMark[i] = true
			if overlaps[i] > 0 {
				grouped++
			}
			overlapSum += overlaps[i]
			b.groupOverlap.Observe(float64(overlaps[i]))
			continue
		}
		held++
	}
	rest := pending[:0]
	for i, r := range pending {
		if !takenMark[i] {
			rest = append(rest, r)
		}
	}
	// Clear the tail so detached requests are not retained by the backing
	// array.
	for i := len(rest); i < len(pending); i++ {
		pending[i] = nil
	}
	b.pending = rest
	if len(rest) == 0 {
		b.pending = nil
	}
	b.holdbacks += held
	b.groupHoldbacks.Add(held)
	b.groupSize.Observe(float64(grouped))
	return taken
}

func (b *Batcher) flushTimer() {
	defer b.timerFlushes.Done()
	b.mu.Lock()
	batch := b.takeLocked(false)
	b.mu.Unlock()
	b.flush(batch)
}

func (b *Batcher) flush(batch []*request) {
	if len(batch) == 0 {
		return
	}
	queries := make([][]float32, len(batch))
	for i, r := range batch {
		queries[i] = r.query
	}
	b.batchSize.Observe(float64(len(queries)))
	var results [][]vec.Neighbor
	var err error
	if b.cfg.ProcessBatch != nil {
		// The minted ID is the batch's identity everywhere downstream: the
		// batch trace, the wire requests, the member flight records.
		results, err = b.cfg.ProcessBatch(telemetry.NewTraceID(), queries)
	} else {
		results, err = b.cfg.Process(queries)
	}
	if err == nil && len(results) != len(batch) {
		err = fmt.Errorf("batcher: Process returned %d results for %d queries", len(results), len(batch))
	}
	b.mu.Lock()
	b.flushes++
	b.queriesServed += int64(len(batch))
	b.mu.Unlock()
	for i, r := range batch {
		if err != nil {
			r.done <- response{err: err}
			continue
		}
		r.done <- response{neighbors: results[i]}
	}
}

// Stats reports batching effectiveness.
type Stats struct {
	Flushes, QueriesServed int64
	// Holdbacks counts queries that sat out a flush inside their slack
	// window (grouped scheduling only).
	Holdbacks int64
	// MeanBatch is queries per flush.
	MeanBatch float64
}

// Collect publishes the snapshot into reg as hermes_batcher_* gauges; wire
// it as a scrape-time collector. A nil registry is a no-op.
func (s Stats) Collect(reg *telemetry.Registry) {
	reg.Gauge("hermes_batcher_flushes_total", "Cumulative flushed batches.").Set(float64(s.Flushes))
	reg.Gauge("hermes_batcher_queries_served_total", "Cumulative queries served through batches.").Set(float64(s.QueriesServed))
	//lint:ignore metricname mean batch size is a dimensionless count-per-flush, not a unit-bearing quantity
	reg.Gauge("hermes_batcher_mean_batch", "Mean queries per flush.").Set(s.MeanBatch)
}

// Stats snapshots the counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{Flushes: b.flushes, QueriesServed: b.queriesServed, Holdbacks: b.holdbacks}
	if s.Flushes > 0 {
		s.MeanBatch = float64(s.QueriesServed) / float64(s.Flushes)
	}
	return s
}

// Close flushes any pending batch, rejects future Searches, and waits for
// any in-flight timer flush to finish, so cfg.Process is never entered
// after Close returns (callers tear down the processor right after).
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.takeLocked(true)
	b.mu.Unlock()
	if len(batch) > 0 {
		b.cfg.Events.Info("batcher.drain", evlog.Int("pending", int64(len(batch))))
	}
	b.flush(batch)
	b.timerFlushes.Wait()
	// Snapshot under the lock: a timer flush racing with Close writes these
	// counters under b.mu right up until the Wait above returns.
	b.mu.Lock()
	flushes, served := b.flushes, b.queriesServed
	b.mu.Unlock()
	b.cfg.Events.Info("batcher.closed",
		evlog.Int("flushes", flushes), evlog.Int("queries", served))
}
