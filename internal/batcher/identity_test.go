package batcher

import (
	"sync"
	"testing"
	"time"

	"repro/internal/vec"
)

// TestProcessBatchIdentity pins the batch-identity contract: every flush
// reaches ProcessBatch with a distinct nonzero minted ID, and ProcessBatch
// takes precedence for execution while results still route per caller.
func TestProcessBatchIdentity(t *testing.T) {
	var mu sync.Mutex
	seen := map[uint64]int{}
	processCalled := false
	b, err := New(Config{
		MaxBatch: 4,
		MaxWait:  2 * time.Millisecond,
		Process: func(queries [][]float32) ([][]vec.Neighbor, error) {
			processCalled = true
			return echoProcess(queries)
		},
		ProcessBatch: func(batchID uint64, queries [][]float32) ([][]vec.Neighbor, error) {
			mu.Lock()
			seen[batchID] += len(queries)
			mu.Unlock()
			if batchID == 0 {
				t.Error("flush carried a zero batch ID")
			}
			return echoProcess(queries)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const queries = 32
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Search([]float32{float32(i)})
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if len(res) != 1 || res[0].ID != int64(i) {
				t.Errorf("query %d routed wrong result %v", i, res)
			}
		}(i)
	}
	wg.Wait()
	b.Close()
	if processCalled {
		t.Fatal("Process ran despite ProcessBatch being set")
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for id, n := range seen {
		if id == 0 {
			t.Fatal("zero batch ID recorded")
		}
		total += n
	}
	if total != queries {
		t.Fatalf("flushes carried %d queries, want %d", total, queries)
	}
	if len(seen) < 2 {
		t.Fatalf("expected multiple flushes with distinct IDs, got %d", len(seen))
	}
}

// TestProcessBatchAloneValidates pins the relaxed constructor requirement:
// ProcessBatch alone is a valid configuration.
func TestProcessBatchAloneValidates(t *testing.T) {
	b, err := New(Config{
		MaxBatch: 2,
		MaxWait:  time.Millisecond,
		ProcessBatch: func(batchID uint64, queries [][]float32) ([][]vec.Neighbor, error) {
			return echoProcess(queries)
		},
	})
	if err != nil {
		t.Fatalf("ProcessBatch-only config rejected: %v", err)
	}
	res, err := b.Search([]float32{7})
	if err != nil || len(res) != 1 || res[0].ID != 7 {
		t.Fatalf("search through ProcessBatch-only batcher: %v, %v", res, err)
	}
	b.Close()
}
