package flatindex

import (
	"fmt"

	"repro/internal/vec"
)

// scanBlock matches the IVF scan block size: 256 rows per L2SquaredBatch
// call keeps the distance scratch in L1 while amortizing call overhead.
const scanBlock = 256

// Searcher is a reusable handle over one Index holding the per-query
// scratch (block distance buffer and top-k selector), so steady-state exact
// searches allocate nothing beyond the caller-visible result slice. Not safe
// for concurrent use; create one per goroutine or let Index.Search draw from
// the internal pool.
type Searcher struct {
	ix   *Index
	dist []float32
	tk   *vec.TopK
}

// NewSearcher returns a fresh search handle for ix.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{ix: ix, dist: make([]float32, scanBlock)}
}

func (ix *Index) getSearcher() *Searcher {
	if s, ok := ix.pool.Get().(*Searcher); ok {
		//lint:ignore poolescape typed pool accessor: every getSearcher is paired with putSearcher by the callers, which keeps the Get/Put bracket one level up
		return s
	}
	return ix.NewSearcher()
}

// Search appends the k exact nearest neighbors of q (best first, squared L2)
// to dst. The scan runs in blocks through vec.L2SquaredBatch — bit-identical
// to the scalar row-by-row loop, so ground-truth outputs are unchanged.
//
//hermes:hotpath
func (s *Searcher) Search(dst []vec.Neighbor, q []float32, k int) []vec.Neighbor {
	ix := s.ix
	if len(q) != ix.dim {
		panic(fmt.Sprintf("flatindex: Search dim %d != %d", len(q), ix.dim))
	}
	n := ix.data.Len()
	if k <= 0 || n == 0 {
		return dst
	}
	if s.tk == nil {
		s.tk = vec.NewTopK(k)
	} else {
		s.tk.Reset(k)
	}
	data := ix.data.Data()
	for b0 := 0; b0 < n; b0 += scanBlock {
		bn := n - b0
		if bn > scanBlock {
			bn = scanBlock
		}
		vec.L2SquaredBatch(q, data[b0*ix.dim:], bn, s.dist)
		dist := s.dist[:bn]
		ids := ix.ids[b0 : b0+bn]
		worst, full := s.tk.WorstScore()
		for i, id := range ids {
			d := dist[i]
			if full && d >= worst {
				continue
			}
			s.tk.Push(id, d)
			worst, full = s.tk.WorstScore()
		}
	}
	return s.tk.AppendResults(dst)
}
