package quant

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// benchSetup holds one trained quantizer with a contiguous code block and a
// bound query, the shape of one inverted-list scan.
type benchSetup struct {
	qz    Quantizer
	codes []byte
	q     []float32
	n     int
}

func newBenchSetup(b *testing.B, qz Quantizer, dim, n int) *benchSetup {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	train := vec.NewMatrix(512, dim)
	for i := range train.Data() {
		train.Data()[i] = float32(rng.NormFloat64())
	}
	if err := qz.Train(train); err != nil {
		b.Fatal(err)
	}
	cs := qz.CodeSize()
	codes := make([]byte, n*cs)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		qz.Encode(v, codes[i*cs:(i+1)*cs])
	}
	q := make([]float32, dim)
	for d := range q {
		q[d] = float32(rng.NormFloat64())
	}
	return &benchSetup{qz: qz, codes: codes, q: q, n: n}
}

// benchQuantizers returns the schemes to measure at dim. PQ/OPQ use dim/8
// subquantizers (dsub=8), the shape used throughout the paper's Table 1.
func benchQuantizers(b *testing.B, dim int) []Quantizer {
	b.Helper()
	pq, err := NewPQ(dim, dim/8, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	opq, err := NewOPQ(dim, dim/8, 8, 5)
	if err != nil {
		b.Fatal(err)
	}
	return []Quantizer{NewFlat(dim), NewSQ(dim, 8), NewSQ(dim, 4), pq, opq}
}

// BenchmarkScalarScan measures the pre-existing per-code closure path: one
// indirect Distancer call per vector, the FAISS-unfaithful baseline.
func BenchmarkScalarScan(b *testing.B) {
	for _, dim := range []int{64, 128, 768} {
		for _, qz := range benchQuantizers(b, dim) {
			b.Run(fmt.Sprintf("%s/dim%d", qz.Name(), dim), func(b *testing.B) {
				s := newBenchSetup(b, qz, dim, 1024)
				cs := s.qz.CodeSize()
				dist := s.qz.NewDistancer(s.q)
				b.SetBytes(int64(s.n * cs))
				b.ResetTimer()
				var sink float32
				for i := 0; i < b.N; i++ {
					for j := 0; j < s.n; j++ {
						sink += dist(s.codes[j*cs : (j+1)*cs])
					}
				}
				_ = sink
			})
		}
	}
}

// BenchmarkBatchScan measures the blocked DistanceBatch kernels over the same
// inputs; per-op work is identical to BenchmarkScalarScan (1024 codes), so
// ns/op is directly comparable.
func BenchmarkBatchScan(b *testing.B) {
	for _, dim := range []int{64, 128, 768} {
		for _, qz := range benchQuantizers(b, dim) {
			b.Run(fmt.Sprintf("%s/dim%d", qz.Name(), dim), func(b *testing.B) {
				s := newBenchSetup(b, qz, dim, 1024)
				kernel := NewBatchDistancer(s.qz)
				kernel.BindQuery(s.q)
				out := make([]float32, s.n)
				b.SetBytes(int64(s.n * s.qz.CodeSize()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kernel.DistanceBatch(s.codes, s.n, out)
				}
			})
		}
	}
}

// BenchmarkBindQuery isolates per-query kernel setup (table/LUT build), the
// cost amortized across a scan — see DESIGN.md §8 for the crossover analysis.
func BenchmarkBindQuery(b *testing.B) {
	dim := 128
	for _, qz := range benchQuantizers(b, dim) {
		b.Run(qz.Name(), func(b *testing.B) {
			s := newBenchSetup(b, qz, dim, 1)
			kernel := NewBatchDistancer(s.qz)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.BindQuery(s.q)
			}
		})
	}
}
