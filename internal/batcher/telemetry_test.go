package batcher

import (
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

func TestBatcherTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := New(Config{
		MaxBatch: 4,
		MaxWait:  time.Hour, // only MaxBatch flushes
		Process: func(queries [][]float32) ([][]vec.Neighbor, error) {
			return make([][]vec.Neighbor, len(queries)), nil
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := b.Search([]float32{1})
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := snap["hermes_batcher_batch_size:count"]; got != 2 {
		t.Errorf("batch-size observations = %v, want 2 flushes", got)
	}
	if got := snap["hermes_batcher_batch_size:sum"]; got != 8 {
		t.Errorf("batch-size sum = %v, want 8 queries", got)
	}
	if got := snap["hermes_batcher_queue_depth"]; got != 0 {
		t.Errorf("queue depth = %v after drain, want 0", got)
	}

	// Stats.Collect publishes the same numbers as scrape-time gauges.
	reg.RegisterCollector(func(r *telemetry.Registry) { b.Stats().Collect(r) })
	snap = reg.Snapshot()
	if got := snap["hermes_batcher_flushes_total"]; got != 2 {
		t.Errorf("flushes = %v, want 2", got)
	}
	if got := snap["hermes_batcher_queries_served_total"]; got != 8 {
		t.Errorf("queries served = %v, want 8", got)
	}
	if got := snap["hermes_batcher_mean_batch"]; got != 4 {
		t.Errorf("mean batch = %v, want 4", got)
	}
}

// TestBatcherNoTelemetry pins that an unconfigured batcher keeps working —
// the handles are nil and every instrumentation site is a no-op.
func TestBatcherNoTelemetry(t *testing.T) {
	b, err := New(Config{
		MaxBatch: 1,
		MaxWait:  time.Millisecond,
		Process: func(queries [][]float32) ([][]vec.Neighbor, error) {
			return make([][]vec.Neighbor, len(queries)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Search([]float32{1}); err != nil {
		t.Fatal(err)
	}
}
