// Package llm provides an analytical transformer-inference model for the
// generation side of the RAG pipeline. The paper runs Phi-1.5 (1.3B),
// Gemma2-9B, and OPT-30B under vLLM on NVIDIA A6000 Ada and L4 GPUs; here
// each combination is a roofline model: the prefill phase is compute-bound
// (2*P FLOPs per token against peak TFLOPS), the decode phase is memory-
// bandwidth-bound (every generated token streams the full weight set plus the
// KV cache from HBM). Tensor parallelism divides both but adds a
// communication tax and multiplies power.
//
// The model only has to be right about what the paper uses inference for:
// the relative magnitudes of prefill vs decode vs retrieval latency and the
// energy of GPU seconds, which drive Figures 5, 6, 8, 14, 16, 17, and 19.
package llm

import (
	"fmt"
	"time"
)

// GPUSpec is a parametric accelerator model.
type GPUSpec struct {
	Name string
	// TFLOPS is peak FP16 tensor-core throughput.
	TFLOPS float64
	// HBMGBps is memory bandwidth in GB/s.
	HBMGBps float64
	// MemGB is device memory capacity.
	MemGB float64
	// TDPWatts is board power at full load; IdleWatts when parked.
	TDPWatts, IdleWatts float64
	// MFU is the achieved fraction of peak compute during prefill;
	// MBU the achieved fraction of peak bandwidth during decode.
	MFU, MBU float64
}

// ModelSpec describes a served LLM.
type ModelSpec struct {
	Name string
	// Params is the parameter count.
	Params float64
	// Layers and Hidden size the KV cache: per token per layer the cache
	// holds 2 (K and V) * Hidden * bytes/elem.
	Layers, Hidden int
	// BytesPerParam is 2 under FP16.
	BytesPerParam float64
}

// WeightBytes returns the model's weight footprint in bytes.
func (m ModelSpec) WeightBytes() float64 { return m.Params * m.BytesPerParam }

// KVBytesPerToken returns KV-cache bytes per sequence token.
func (m ModelSpec) KVBytesPerToken() float64 {
	return 2 * float64(m.Layers) * float64(m.Hidden) * m.BytesPerParam
}

// Paper models.
var (
	Phi15 = ModelSpec{Name: "Phi-1.5 (1.3B)", Params: 1.3e9, Layers: 24, Hidden: 2048, BytesPerParam: 2}
	// Gemma2 9B (42 layers, d_model 3584).
	Gemma2_9B = ModelSpec{Name: "Gemma2 (9B)", Params: 9.2e9, Layers: 42, Hidden: 3584, BytesPerParam: 2}
	OPT30B    = ModelSpec{Name: "OPT (30B)", Params: 30e9, Layers: 48, Hidden: 7168, BytesPerParam: 2}
)

// Paper GPUs. The paper quotes shader FP32 peaks (A6000 Ada: 91 TFLOPS /
// 300 W; L4: 31 TFLOPS / 140 W); inference runs on tensor cores in FP16, so
// the model uses the FP16 tensor peaks (362.6 and 121 TFLOPS respectively),
// which preserve the paper's ~3x performance and ~2x power gap between the
// two parts. Idle watts are modeled.
var (
	A6000Ada = GPUSpec{Name: "NVIDIA A6000 Ada", TFLOPS: 362.6, HBMGBps: 960, MemGB: 48, TDPWatts: 300, IdleWatts: 25, MFU: 0.55, MBU: 0.70}
	L4       = GPUSpec{Name: "NVIDIA L4", TFLOPS: 121, HBMGBps: 300, MemGB: 24, TDPWatts: 140, IdleWatts: 12, MFU: 0.50, MBU: 0.65}
)

// Models lists the paper's inference models.
func Models() []ModelSpec { return []ModelSpec{Phi15, Gemma2_9B, OPT30B} }

// GPUs lists the paper's accelerator platforms.
func GPUs() []GPUSpec { return []GPUSpec{A6000Ada, L4} }

// Engine is a deployed (model, GPU, tensor-parallel degree) combination.
type Engine struct {
	Model ModelSpec
	GPU   GPUSpec
	// TP is the tensor-parallel degree (number of GPUs).
	TP int
	// CommOverhead is the fractional latency tax per additional TP rank
	// (all-reduce cost); default 0.15.
	CommOverhead float64
}

// NewEngine validates and builds an engine. It errors if the model's weights
// (plus a margin for activations/KV) do not fit the aggregate GPU memory,
// reproducing the paper's deployment constraints (OPT-30B needs 2x A6000;
// Gemma2-9B needs 2x L4).
func NewEngine(model ModelSpec, gpu GPUSpec, tp int) (*Engine, error) {
	if tp <= 0 {
		tp = 1
	}
	e := &Engine{Model: model, GPU: gpu, TP: tp, CommOverhead: 0.15}
	if !e.Fits() {
		return nil, fmt.Errorf("llm: %s does not fit on %dx %s (%.0f GB weights vs %.0f GB usable)",
			model.Name, tp, gpu.Name, model.WeightBytes()/1e9, e.usableMemBytes()/1e9)
	}
	return e, nil
}

// usableMemBytes leaves a 25% margin for activations, KV cache, and runtime.
func (e *Engine) usableMemBytes() float64 {
	return e.GPU.MemGB * 1e9 * float64(e.TP) * 0.75
}

// Fits reports whether the model's weights fit the engine's memory budget.
func (e *Engine) Fits() bool {
	return e.Model.WeightBytes() <= e.usableMemBytes()
}

// MinTP returns the smallest tensor-parallel degree at which the model fits
// on the given GPU.
func MinTP(model ModelSpec, gpu GPUSpec) int {
	for tp := 1; tp <= 16; tp++ {
		e := Engine{Model: model, GPU: gpu, TP: tp}
		if e.Fits() {
			return tp
		}
	}
	return 16
}

func (e *Engine) commFactor() float64 {
	return 1 + e.CommOverhead*float64(e.TP-1)
}

// PrefillLatency models processing inputTokens prompt tokens for a batch of
// queries: compute-bound at MFU-derated TFLOPS, divided across TP ranks,
// taxed by communication.
func (e *Engine) PrefillLatency(batch, inputTokens int) time.Duration {
	if batch <= 0 || inputTokens <= 0 {
		return 0
	}
	flops := 2 * e.Model.Params * float64(batch) * float64(inputTokens)
	sec := flops / (e.GPU.TFLOPS * 1e12 * e.GPU.MFU * float64(e.TP)) * e.commFactor()
	return time.Duration(sec * float64(time.Second))
}

// DecodeLatency models generating outTokens tokens for a batch: each step
// streams the weights once (shared across the batch under vLLM-style
// continuous batching) plus every sequence's KV cache at the current context
// length.
func (e *Engine) DecodeLatency(batch, contextTokens, outTokens int) time.Duration {
	if batch <= 0 || outTokens <= 0 {
		return 0
	}
	bw := e.GPU.HBMGBps * 1e9 * e.GPU.MBU * float64(e.TP)
	var sec float64
	for s := 0; s < outTokens; s++ {
		ctx := float64(contextTokens + s)
		bytes := e.Model.WeightBytes() + float64(batch)*ctx*e.Model.KVBytesPerToken()
		sec += bytes / bw
	}
	return time.Duration(sec * e.commFactor() * float64(time.Second))
}

// Power returns the engine's active power draw (all TP ranks at TDP-scale
// utilization).
func (e *Engine) Power() float64 { return e.GPU.TDPWatts * 0.9 * float64(e.TP) }

// IdlePower returns the engine's parked power.
func (e *Engine) IdlePower() float64 { return e.GPU.IdleWatts * float64(e.TP) }

// PrefillEnergy returns Joules for one batch prefill.
func (e *Engine) PrefillEnergy(batch, inputTokens int) float64 {
	return e.Power() * e.PrefillLatency(batch, inputTokens).Seconds()
}

// DecodeEnergy returns Joules for one batch decode phase.
func (e *Engine) DecodeEnergy(batch, contextTokens, outTokens int) float64 {
	return e.Power() * e.DecodeLatency(batch, contextTokens, outTokens).Seconds()
}

// String renders the engine configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("%s on %dx %s", e.Model.Name, e.TP, e.GPU.Name)
}
