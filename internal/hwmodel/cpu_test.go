package hwmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAllPlatformsValidate(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
}

func TestPlatformByName(t *testing.T) {
	p, err := PlatformByName("Intel Xeon Gold 6448Y")
	if err != nil || p.Cores != 32 {
		t.Fatalf("lookup failed: %v %+v", err, p)
	}
	if _, err := PlatformByName("nope"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

func TestCalibrationAnchor(t *testing.T) {
	// Paper Fig. 6: 10B tokens, batch 32, 32 cores -> 5.62 s.
	got := XeonGold6448Y.RetrievalLatency(10_000_000_000, 32, XeonGold6448Y.BaseGHz)
	want := 5620 * time.Millisecond
	if math.Abs(got.Seconds()-want.Seconds()) > 0.01 {
		t.Fatalf("anchor latency = %v, want %v", got, want)
	}
}

func TestLatencyLinearInTokens(t *testing.T) {
	// Paper: "roughly linear growth in latency with datastore size".
	l10 := XeonGold6448Y.RetrievalLatency(10e9, 32, 2.3).Seconds()
	l100 := XeonGold6448Y.RetrievalLatency(100e9, 32, 2.3).Seconds()
	if math.Abs(l100/l10-10) > 0.15 {
		t.Fatalf("latency scaling %v, want ~10x", l100/l10)
	}
}

func TestLatencyBatchWaves(t *testing.T) {
	// 32 cores: batch 32 is one wave, batch 128 is four.
	l32 := XeonGold6448Y.RetrievalLatency(1e9, 32, 2.3)
	l128 := XeonGold6448Y.RetrievalLatency(1e9, 128, 2.3)
	if l128 != 4*l32 {
		t.Fatalf("batch 128 latency %v != 4x batch 32 %v", l128, l32)
	}
	// batch 33 also needs two waves.
	l33 := XeonGold6448Y.RetrievalLatency(1e9, 33, 2.3)
	if l33 != 2*l32 {
		t.Fatalf("batch 33 latency %v != 2x batch 32 %v", l33, l32)
	}
}

func TestLatencyZeroInputs(t *testing.T) {
	if XeonGold6448Y.RetrievalLatency(0, 32, 2.3) != 0 {
		t.Fatal("zero tokens should cost nothing")
	}
	if XeonGold6448Y.RetrievalLatency(1e9, 0, 2.3) != 0 {
		t.Fatal("zero batch should cost nothing")
	}
}

func TestFrequencySlowsLatency(t *testing.T) {
	fast := XeonGold6448Y.RetrievalLatency(1e9, 32, 2.3)
	slow := XeonGold6448Y.RetrievalLatency(1e9, 32, 1.15)
	if math.Abs(slow.Seconds()/fast.Seconds()-2) > 0.01 {
		t.Fatalf("half frequency should double latency: %v vs %v", slow, fast)
	}
}

func TestVoltageMonotone(t *testing.T) {
	p := XeonGold6448Y
	f := func(a, b uint8) bool {
		fa := p.MinGHz + float64(a)/255*(p.MaxGHz-p.MinGHz)
		fb := p.MinGHz + float64(b)/255*(p.MaxGHz-p.MinGHz)
		if fa > fb {
			fa, fb = fb, fa
		}
		return p.Voltage(fa) <= p.Voltage(fb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if p.Voltage(0.1) != p.VMin {
		t.Fatal("below-range voltage should clamp to VMin")
	}
	if p.Voltage(99) != p.VMax {
		t.Fatal("above-range voltage should clamp to VMax")
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	p := XeonGold6448Y
	prev := 0.0
	for f := p.MinGHz; f <= p.MaxGHz; f += 0.1 {
		pw := p.Power(f)
		if pw <= prev {
			t.Fatalf("power not monotone at %v GHz: %v <= %v", f, pw, prev)
		}
		prev = pw
	}
	// At base frequency the model must return ActiveWatts exactly.
	if math.Abs(p.Power(p.BaseGHz)-p.ActiveWatts) > 1e-9 {
		t.Fatalf("power at base = %v, want %v", p.Power(p.BaseGHz), p.ActiveWatts)
	}
	if p.Power(p.MinGHz) <= p.IdleWatts {
		t.Fatal("active power at min frequency must exceed idle power")
	}
}

func TestDVFSSavesEnergyOnSlack(t *testing.T) {
	// The premise of Fig. 21: over a fixed window (set by the slowest
	// stage), stretching the busy time to fill the window at a lower
	// frequency costs less energy than racing at base frequency and then
	// idling.
	p := XeonGold6448Y
	window := p.RetrievalLatency(1e9, 32, p.MinGHz) // slack window
	eRace := p.EnergyInWindow(1e9, 32, p.BaseGHz, window)
	eStretch := p.EnergyInWindow(1e9, 32, p.MinGHz, window)
	if eStretch >= eRace {
		t.Fatalf("stretched energy %v should be < race-to-idle %v", eStretch, eRace)
	}
}

func TestEnergyInWindowBusyExceedsWindow(t *testing.T) {
	// A window shorter than the busy time charges the full busy time and
	// no idle time.
	p := XeonGold6448Y
	busy := p.RetrievalLatency(1e9, 32, p.BaseGHz)
	e := p.EnergyInWindow(1e9, 32, p.BaseGHz, busy/2)
	want := p.ActiveWatts * busy.Seconds()
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("over-busy window energy = %v, want %v", e, want)
	}
}

func TestFrequencyForLatency(t *testing.T) {
	p := XeonGold6448Y
	// Target exactly the base-frequency latency -> base frequency.
	base := p.RetrievalLatency(1e9, 32, p.BaseGHz)
	f := p.FrequencyForLatency(1e9, 32, base)
	if math.Abs(f-p.BaseGHz) > 1e-9 {
		t.Fatalf("freq for base latency = %v, want %v", f, p.BaseGHz)
	}
	// Target 2x the latency -> half frequency.
	f2 := p.FrequencyForLatency(1e9, 32, 2*base)
	if math.Abs(f2-p.BaseGHz/2) > 1e-9 {
		t.Fatalf("freq for 2x latency = %v, want %v", f2, p.BaseGHz/2)
	}
	// Absurdly loose target clamps at MinGHz.
	if f3 := p.FrequencyForLatency(1e9, 32, time.Hour); f3 != p.MinGHz {
		t.Fatalf("loose target freq = %v, want MinGHz", f3)
	}
	// Impossible target clamps at MaxGHz.
	if f4 := p.FrequencyForLatency(1e12, 32, time.Nanosecond); f4 != p.MaxGHz {
		t.Fatalf("impossible target freq = %v, want MaxGHz", f4)
	}
	// Non-positive target returns base.
	if f5 := p.FrequencyForLatency(1e9, 32, 0); f5 != p.BaseGHz {
		t.Fatalf("zero target freq = %v", f5)
	}
}

// Running at the frequency chosen for a latency target actually meets it.
func TestFrequencyForLatencyMeetsTarget(t *testing.T) {
	p := XeonPlatinum8380
	target := 3 * time.Second
	f := p.FrequencyForLatency(5e9, 64, target)
	got := p.RetrievalLatency(5e9, 64, f)
	if got > target+time.Millisecond && f > p.MinGHz {
		t.Fatalf("latency %v misses target %v at chosen freq %v", got, target, f)
	}
}

func TestPlatformOrderingMatchesFig20(t *testing.T) {
	// Platinum 8380 must be the fastest per batch; Neoverse-N1 the
	// slowest at batch 32 but competitive at large batches thanks to 80
	// cores.
	tokens := int64(10e9)
	lPlat := XeonPlatinum8380.RetrievalLatency(tokens, 32, 0).Seconds()
	lGold := XeonGold6448Y.RetrievalLatency(tokens, 32, 0).Seconds()
	lSilver := XeonSilver4316.RetrievalLatency(tokens, 32, 0).Seconds()
	lARM := NeoverseN1.RetrievalLatency(tokens, 32, 0).Seconds()
	if !(lPlat < lGold && lGold < lSilver && lSilver < lARM) {
		t.Fatalf("batch-32 ordering wrong: plat=%v gold=%v silver=%v arm=%v", lPlat, lGold, lSilver, lARM)
	}
	// At batch 128 ARM's 80 cores close most of the throughput gap vs
	// Silver's 20 cores.
	qARM := NeoverseN1.Throughput(tokens, 128, 0)
	qSilver := XeonSilver4316.Throughput(tokens, 128, 0)
	if qARM < qSilver {
		t.Fatalf("ARM batch-128 QPS %v should beat Silver %v", qARM, qSilver)
	}
}

func TestThroughputZeroLatency(t *testing.T) {
	if XeonGold6448Y.Throughput(0, 32, 0) != 0 {
		t.Fatal("zero-token throughput should be 0")
	}
}
